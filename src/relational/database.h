#ifndef TEXTJOIN_RELATIONAL_DATABASE_H_
#define TEXTJOIN_RELATIONAL_DATABASE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "dynamic/dynamic_collection.h"
#include "exec/admission.h"
#include "exec/governor.h"
#include "index/inverted_file.h"
#include "planner/planner.h"
#include "relational/text_join_query.h"
#include "serve/result_cache.h"
#include "serve/scheduler.h"
#include "storage/disk_manager.h"
#include "storage/reliable_disk.h"
#include "text/collection.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace textjoin {

// Convenience facade over the whole stack: one simulated disk, one shared
// vocabulary (the paper's standard term-number mapping), named document
// collections and inverted files, planner-driven joins, and save/open via
// disk snapshots + durable catalogs.
//
//   Database db;
//   db.AddCollectionFromText("resumes", {...lines...});
//   db.AddCollectionFromText("jobs", {...lines...});
//   db.BuildIndex("resumes");
//   auto result = db.Join("resumes", "jobs", spec);
//   db.Save("/tmp/db.tjsn");
//   ...
//   auto db2 = Database::Open("/tmp/db.tjsn");
//   auto again = (*db2)->Join("resumes", "jobs", spec);
//
// Persisted: collections, inverted files, dynamic collections (their
// generations and WAL travel with the disk image), the vocabulary. Tables
// (relational rows) are not persisted. Save() may be called once per
// Database instance (the snapshot format has no file replacement).
// Storage configuration of a Database.
struct DatabaseOptions {
  int64_t page_size = 4096;
  // Route all page I/O through a ReliableDisk decorator: per-page
  // checksums at build time, verified reads, retry with backoff. Turn on
  // for deployments whose device may fail (see storage/reliable_disk.h);
  // recovery counters surface in EXPLAIN ANALYZE.
  bool reliable_storage = false;
  RetryPolicy retry;
  // Query-lifecycle governance: max concurrent queries, bounded wait
  // queue, total memory budget, default deadline (exec/admission.h).
  // All-zero defaults keep admission control off.
  AdmissionOptions admission;
};

class Database {
 public:
  explicit Database(int64_t page_size = 4096)
      : Database(DatabaseOptions{page_size, false, RetryPolicy(),
                                 AdmissionOptions()}) {}
  explicit Database(const DatabaseOptions& options);

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  static Result<std::unique_ptr<Database>> Open(const std::string& path);
  static Result<std::unique_ptr<Database>> Open(const std::string& path,
                                                const DatabaseOptions& options);

  Status Save(const std::string& path);

  // The device all collections and indexes of this database live on: the
  // reliable decorator when the database was opened with
  // DatabaseOptions::reliable_storage, else the simulated disk itself.
  Disk* disk() { return active_disk_; }
  // The underlying simulated device (fault injection, snapshots).
  SimulatedDisk* simulated_disk() { return disk_.get(); }
  // The reliability layer, or nullptr when reliable_storage is off.
  ReliableDisk* reliable_disk() { return reliable_.get(); }
  Vocabulary* vocabulary() { return &vocabulary_; }

  // Builds a collection by tokenizing one document per string.
  Result<const DocumentCollection*> AddCollectionFromText(
      const std::string& name, const std::vector<std::string>& documents);

  // Registers an already-built collection under `name`.
  Result<const DocumentCollection*> AddCollection(
      const std::string& name, DocumentCollection collection);

  // Builds (and registers) the inverted file + B+tree on a collection.
  Result<const InvertedFile*> BuildIndex(
      const std::string& collection_name,
      PostingCompression compression = PostingCompression::kNone);

  const DocumentCollection* collection(const std::string& name) const;
  const InvertedFile* index(const std::string& collection_name) const;
  std::vector<std::string> collection_names() const;

  // ---- Dynamic collections (dynamic/dynamic_collection.h) ----
  //
  // A dynamic collection accepts inserts and deletes after creation. Every
  // mutation is WAL-logged before it is applied, so a crash (or a snapshot
  // taken at any moment) loses nothing that was acknowledged; Open replays
  // the tail. Joins over dynamic collections merge the delta at query time
  // and return exactly what a from-scratch rebuild would.

  // Creates a dynamic collection by tokenizing one document per string.
  // The name must not collide with any static or dynamic collection.
  Result<DynamicCollection*> AddDynamicCollectionFromText(
      const std::string& name, const std::vector<std::string>& documents);

  // Appends a new document; returns its stable DocKey. Bumps the
  // collection's epoch (cached joins touching it are dropped).
  Result<DocKey> InsertDocument(const std::string& name,
                                const std::string& text);

  // Deletes a document by key. Bumps the epoch.
  Status DeleteDocument(const std::string& name, DocKey key);

  // Folds the delta into a fresh on-disk generation (atomic swap). Bumps
  // the epoch.
  Status CompactCollection(const std::string& name);

  DynamicCollection* dynamic_collection(const std::string& name);
  const DynamicCollection* dynamic_collection(const std::string& name) const;
  std::vector<std::string> dynamic_names() const;

  // Planner-driven join: for each document of `outer_name`, the
  // spec.lambda most similar documents of `inner_name`.
  Result<JoinResult> Join(const std::string& inner_name,
                          const std::string& outer_name, const JoinSpec& spec,
                          PlanChoice* chosen = nullptr);

  // Join with per-phase instrumentation: also returns the QueryStats tree
  // and the rendered EXPLAIN ANALYZE report.
  Result<AnalyzedJoin> JoinAnalyze(const std::string& inner_name,
                                   const std::string& outer_name,
                                   const JoinSpec& spec,
                                   const ExplainOptions& options = {});

  // Registers a relation for ExecuteSql FROM clauses. The table is not
  // owned and must outlive the database's SQL use.
  Status RegisterTable(const Table* table);

  struct SqlOutput {
    QueryResult result;
    std::vector<std::string> rows;  // formatted per the select list
  };

  // Parses and runs one extended-SQL query against the registered tables
  // (see relational/sql_parser.h for the grammar, including the
  // `EXPLAIN ANALYZE` prefix; the report lands in result.explain).
  // Inverted files registered for the referenced collections are used
  // automatically.
  Result<SqlOutput> ExecuteSql(const std::string& sql);

  // System parameters used by Join (default: B=10000, P=page size,
  // alpha=5).
  void set_system_params(const SystemParams& sys) { sys_ = sys; }
  const SystemParams& system_params() const { return sys_; }

  // The admission controller every Join/JoinAnalyze/SQL query passes
  // through (a pass-through when DatabaseOptions::admission is all-zero).
  AdmissionController* admission() { return &admission_; }

  // The database's result cache over Join/JoinAnalyze and SQL SIMILAR_TO
  // queries (serve/result_cache.h). Disabled (capacity 0) by default;
  // enable with `SET result_cache_entries = N` or set_capacity().
  ResultCache* result_cache() { return &result_cache_; }

  // Content epoch of a registered collection (1 at registration), or -1
  // when unknown. Cache keys include epochs, so a bump makes every cached
  // result over the collection unreachable — and eagerly erased.
  int64_t CollectionEpoch(const std::string& name) const;
  Status BumpCollectionEpoch(const std::string& name);

  // Builds a serving scheduler (serve/scheduler.h) over this database's
  // disk and vocabulary, with every indexed collection registered. The
  // scheduler owns its OWN admission controller, buffer pool, cache and
  // epochs (seeded from the database's) — a serving tier beside the ad-hoc
  // query path, not a wrapper around it.
  Result<std::unique_ptr<QueryScheduler>> NewScheduler(
      const ServeOptions& options);

  // Session-level lifecycle defaults, settable through SQL:
  //   SET deadline_ms = 250
  //   SET memory_budget_pages = 500
  // 0 clears the knob (falls back to DatabaseOptions::admission defaults).
  double session_deadline_ms() const { return session_deadline_ms_; }
  int64_t session_memory_budget_pages() const {
    return session_memory_budget_pages_;
  }

 private:
  // One query's admission ticket + governor, released by EndGoverned.
  struct GovernedRun {
    bool admission_active = false;
    AdmissionGrant grant;
    std::unique_ptr<QueryGovernor> governor;
  };

  // Admission (predicted cost -> admit/queue/shed) and governor creation
  // for one join about to run on `ctx`.
  Result<GovernedRun> BeginGoverned(const JoinContext& ctx,
                                    const JoinSpec& spec);
  void EndGoverned(GovernedRun* run);

  // Handles a `SET <knob> = <value>` statement; returns true when `sql`
  // was one.
  Result<bool> TryExecuteSet(const std::string& sql, SqlOutput* out);
  // Join when at least one side is dynamic: merged-statistics delta join
  // (dynamic/delta_join.h) instead of the static planner path.
  Result<JoinResult> JoinDynamic(const std::string& inner_name,
                                 const std::string& outer_name,
                                 const JoinSpec& spec, PlanChoice* chosen);
  // Replaces the device (snapshot reopen), rebuilding the reliable layer.
  void InstallDisk(std::unique_ptr<SimulatedDisk> disk);

  DatabaseOptions options_;
  std::unique_ptr<SimulatedDisk> disk_;
  std::unique_ptr<ReliableDisk> reliable_;  // non-null iff reliable_storage
  Disk* active_disk_ = nullptr;
  Vocabulary vocabulary_;
  Tokenizer tokenizer_;
  SystemParams sys_;
  AdmissionController admission_;
  ResultCache result_cache_{0};  // disabled until SET result_cache_entries
  std::unordered_map<std::string, int64_t> epochs_;
  double session_deadline_ms_ = 0;
  int64_t session_memory_budget_pages_ = 0;
  // node-stable maps: executors hold pointers into these.
  std::unordered_map<std::string, std::unique_ptr<DocumentCollection>>
      collections_;
  std::unordered_map<std::string, std::unique_ptr<InvertedFile>> indexes_;
  std::unordered_map<std::string, std::unique_ptr<DynamicCollection>>
      dynamic_;
  std::vector<const Table*> tables_;  // not owned
  bool saved_ = false;
};

}  // namespace textjoin

#endif  // TEXTJOIN_RELATIONAL_DATABASE_H_
