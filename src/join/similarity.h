#ifndef TEXTJOIN_JOIN_SIMILARITY_H_
#define TEXTJOIN_JOIN_SIMILARITY_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "text/collection.h"
#include "text/types.h"

namespace textjoin {

// How similarity between two documents is scored.
//
// The paper's base definition (Section 3) is the raw dot product of
// occurrence counts: sum over common terms of u_i * v_i. It also notes the
// two standard refinements — dividing by the document norms (cosine) and
// weighting terms by inverse document frequency — both of which can be
// folded into the same accumulation loop, so all three executors support
// them identically:
//   contribution(t) = u_t * v_t * idf(t)^2        (accumulated per pair)
//   final           = acc / (norm(d1) * norm(d2)) (if cosine_normalize)
struct SimilarityConfig {
  bool cosine_normalize = false;
  bool use_idf = false;
};

// Per-term idf weights over the union of two collections:
//   idf(t) = ln(1 + (N1 + N2) / (df1(t) + df2(t))).
// Returned object is an unmetered catalog (document frequencies are IR
// system metadata the paper assumes are kept anyway).
class IdfWeights {
 public:
  IdfWeights() = default;
  IdfWeights(const DocumentCollection& c1, const DocumentCollection& c2,
             const SimilarityConfig& config);

  // Weights over explicitly merged statistics instead of two catalogs:
  // `df` maps term -> combined live document frequency and `n_total` is
  // the combined live document count. Dynamic collections use this to
  // score base + delta + deletes with the exact formula above, so scores
  // are bit-identical to a from-scratch rebuild (same df, same N, same
  // expression).
  static IdfWeights FromMergedStats(double n_total,
                                    std::unordered_map<TermId, int64_t> df,
                                    bool enabled);

  // Squared idf of `term` (1.0 when idf weighting is off).
  double Squared(TermId term) const;

  bool enabled() const { return enabled_; }

 private:
  bool enabled_ = false;
  double n_total_ = 0;
  const DocumentCollection* c1_ = nullptr;
  const DocumentCollection* c2_ = nullptr;
  bool use_merged_ = false;
  std::unordered_map<TermId, int64_t> merged_df_;
};

// Precomputed document norms of a collection under `config` (all 1.0 when
// cosine normalization is off). Raw norms come from the collection catalog
// (precomputed at build time, as the paper assumes); idf-weighted norms
// require one setup scan of the collection — callers build the
// SimilarityContext before metering starts.
class DocumentNorms {
 public:
  DocumentNorms() = default;
  static Result<DocumentNorms> Create(const DocumentCollection& collection,
                                      const IdfWeights& idf,
                                      const SimilarityConfig& config);

  // Wraps precomputed per-document norms (dynamic collections extend the
  // base collection's norms with delta-document norms).
  static DocumentNorms FromVector(std::vector<double> norms);

  double of(DocId doc) const {
    return norms_.empty() ? 1.0 : norms_[doc];
  }

  const std::vector<double>& values() const { return norms_; }

 private:
  std::vector<double> norms_;
};

// Everything an executor needs to turn accumulated products into final
// scores. Built once per join, before I/O metering starts; all its lookups
// are unmetered in-memory work.
//
// All three executors accumulate per-pair contributions in ascending term
// order (documents and inverted files are term-sorted), so floating-point
// results are bit-identical across HHNL, HVNL and VVM.
struct SimilarityContext {
  SimilarityConfig config;
  IdfWeights idf;
  DocumentNorms inner_norms;
  DocumentNorms outer_norms;

  // `inner` is C1, `outer` is C2.
  static Result<SimilarityContext> Create(const DocumentCollection& inner,
                                          const DocumentCollection& outer,
                                          const SimilarityConfig& config);

  // Multiplier applied to u_t * v_t when accumulating term t.
  double TermFactor(TermId term) const { return idf.Squared(term); }

  // Final score of an accumulated pair value.
  double Finalize(double acc, DocId inner_doc, DocId outer_doc) const {
    if (!config.cosine_normalize) return acc;
    double denom = inner_norms.of(inner_doc) * outer_norms.of(outer_doc);
    return denom > 0 ? acc / denom : 0.0;
  }
};

// Generalized dot product of two documents under `ctx`'s term weighting
// (contributions accumulated in ascending term order; O(|d1| + |d2|)).
// Cosine normalization is NOT applied here — call ctx.Finalize.
double WeightedDot(const Document& d1, const Document& d2,
                   const SimilarityContext& ctx);

// WeightedDot plus the CPU-work detail the counted executors report: how
// many merge steps the walk took and how many terms the documents share.
// `blocks_skipped` counts d-cell blocks a blocked gallop jumped over
// without probing any cell inside them (0 for the non-blocked kernels).
struct DotDetail {
  double acc = 0;
  int64_t merge_steps = 0;
  int64_t common_terms = 0;
  int64_t blocks_skipped = 0;
};
DotDetail WeightedDotDetailed(const Document& d1, const Document& d2,
                              const SimilarityContext& ctx);

// Which intersection kernel WeightedDotKernel runs.
//
// All kernels visit the common terms in the same ascending order and
// evaluate each contribution with the same expression, so their
// accumulated sums are bit-identical — they differ only in how many merge
// steps they spend finding the common terms (metered in
// DotDetail::merge_steps: one per cell visited or search probe made).
enum class MergeKernel {
  kLinear,     // the paper's two-pointer walk, O(|d1| + |d2|)
  kGalloping,  // exponential + binary search from the shorter document,
               // O(short * log(long)) — wins when lengths are skewed
  kAdaptive,   // kGalloping when the length ratio reaches
               // kGallopSizeRatio, else kLinear
};

// Length ratio at which the adaptive kernel switches to galloping: at 16x
// the expected probe count short*(2*log2(ratio)+2) drops below the linear
// walk's short+long steps.
inline constexpr int64_t kGallopSizeRatio = 16;

// Last term of each fixed-size cell block of a document — the d-cell
// mirror of the inverted file's per-block summaries (block size
// kPostingBlockCells). One probe of this array answers "is the target
// past this whole block?", so a blocked gallop jumps block-sized strides
// instead of galloping cell by cell. Built unmetered at setup, like
// SuffixBounds.
class DocBlockIndex {
 public:
  void Build(const Document& doc);

  bool empty() const { return last_.empty(); }
  const std::vector<TermId>& last_terms() const { return last_; }

 private:
  std::vector<TermId> last_;
};

// The block indexes are optional (null = plain galloping); when present
// they must index the corresponding document's cells.
DotDetail WeightedDotKernel(const Document& d1, const Document& d2,
                            const SimilarityContext& ctx, MergeKernel kernel,
                            const DocBlockIndex* blocks1 = nullptr,
                            const DocBlockIndex* blocks2 = nullptr);

// Building block of the galloping kernel, shared with the threshold-aware
// merge in join/pruning.h: first index >= lo whose term is >= t, found by
// exponential probing then binary search. Every probe is metered as one
// merge step into *steps.
size_t GallopLowerBound(const std::vector<DCell>& cells, size_t lo, TermId t,
                        int64_t* steps);

// GallopLowerBound with block-boundary probing: identical result, fewer
// probes when the target lies whole blocks ahead (one summary probe rules
// out kPostingBlockCells cells at once). `blocks` must index `cells`.
// Probes — of summaries and of cells — are metered into *steps exactly
// like GallopLowerBound's; blocks jumped over without any cell probe are
// counted into *blocks_skipped (may be null).
size_t GallopLowerBoundBlocked(const std::vector<DCell>& cells,
                               const DocBlockIndex& blocks, size_t lo,
                               TermId t, int64_t* steps,
                               int64_t* blocks_skipped);

}  // namespace textjoin

#endif  // TEXTJOIN_JOIN_SIMILARITY_H_
