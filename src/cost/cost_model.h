#ifndef TEXTJOIN_COST_COST_MODEL_H_
#define TEXTJOIN_COST_COST_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cost/params.h"

namespace textjoin {

// Analytic I/O cost model of Section 5 of the paper. All costs are in
// units of one sequential page read; a random page read costs alpha.
//
// Conventions:
//   * C1 is the inner collection (the one whose documents / inverted file
//     are probed), C2 the outer (the paper's "forward order").
//   * Each algorithm has a sequential-I/O cost (`hhs`, `hvs`, `vvs`) and a
//     worst-case random-I/O cost (`hhr`, `hvr`, `vvr`).
//   * An algorithm can be infeasible for a given memory size (e.g. HHNL
//     when not even one outer document fits next to one inner document);
//     its costs are then +infinity and `feasible` is false.

// Which of the three algorithms.
enum class Algorithm { kHhnl, kHvnl, kVvm };

const char* AlgorithmName(Algorithm a);

// Inputs of one cost evaluation.
struct CostInputs {
  CollectionStatistics c1;  // inner
  CollectionStatistics c2;  // outer
  SystemParams sys;
  QueryParams query;

  // q: probability that a term in C2 also appears in C1. Use
  // EstimateTermOverlap() for the paper's piecewise model, or supply a
  // measured value.
  double q = 0.8;

  // Number of documents of C2 actually participating in the join (after
  // selections on non-textual attributes). Defaults to all of C2.
  // Simulation Group 3 sets this below c2.num_documents.
  int64_t participating_outer = -1;  // -1 => c2.num_documents

  // True when the participating documents are a subset of an ORIGINALLY
  // larger collection, so they sit at scattered storage locations and must
  // be read with random I/Os (Group 3). False when C2 is originally small
  // and scanned sequentially (Groups 1, 2, 4, 5).
  bool outer_reads_random = false;

  // CPU-model pruning knobs (cost/cpu_model.h): the expected fraction of
  // candidate pairs the executor's top-lambda bounds skip, and whether the
  // adaptive galloping merge kernel is enabled. Both default to "off" so
  // the I/O formulas and the unpruned CPU estimates are unchanged; the
  // planner fills them from JoinSpec::pruning.
  double pruning_rate = 0.0;
  bool adaptive_merge = false;
  // Block-max traversal (PruningConfig::block_skip): per-block maxima let
  // the executors skip whole 64-cell posting blocks (decode discount for
  // HVNL/VVM) and gallop over block summaries (merge discount for HHNL).
  // Only effective alongside the knob it refines, mirroring the executors.
  bool block_skip = false;
};

// Cost of one algorithm under the two device models.
struct AlgorithmCost {
  double seq = 0;    // all I/Os sequential where the algorithm permits
  double rand = 0;   // worst case: device busy with other obligations
  bool feasible = true;
  std::string note;  // which formula case applied (for reports/debugging)
};

// The paper's estimate of the probability q that a term of the collection
// with `t_from` distinct terms also appears in the collection with `t_to`
// distinct terms (Section 6):
//   q = 0.8 * t_to / t_from        if t_to <= t_from
//   q = 0.8                        if t_from < t_to < 5 * t_from
//   q = 1 - t_from / t_to          if t_to >= 5 * t_from
double EstimateTermOverlap(int64_t t_from, int64_t t_to);

// Expected number of distinct terms in m documents of a collection with
// T distinct terms and K terms per document:
//   f(m) = T - (1 - K/T)^m * T.
// Accepts fractional m (the HVNL formula evaluates f at s + X1).
double DistinctTermsAfter(double m, double avg_terms_per_doc,
                          int64_t num_distinct_terms);

// HHNL outer batch size X = (B - ceil(S1)) / (S2 + 4*lambda/P), the number
// of outer documents held in memory at once. May be fractional; < 1 means
// infeasible.
double HhnlBatchSize(const CostInputs& in);

// HVNL entry-cache capacity
//   X = floor((B - ceil(S2) - Bt1 - 4*N1*delta/P) / (J1 + |t#|/P)),
// the number of C1 inverted entries held in memory at once. Negative
// means infeasible.
double HvnlCacheCapacity(const CostInputs& in);

// VVM memory for intermediate similarities M = B - ceil(J1) - ceil(J2) and
// requirement SM = 4*delta*N1*N2'/P (N2' = participating outer documents).
// passes = ceil(SM/M).
int64_t VvmPasses(const CostInputs& in);

AlgorithmCost HhnlCost(const CostInputs& in);
AlgorithmCost HvnlCost(const CostInputs& in);
AlgorithmCost VvmCost(const CostInputs& in);

// The backward-order HHNL the paper mentions in Section 4.1 and defers to
// the tech report: C1 drives the outer loop in batches of
//   X' = floor((B - ceil(S2) - 4*lambda*N2'/P) / S1)
// (the buffer must also hold one outer document and a top-lambda heap for
// EVERY participating outer document), and C2 is rescanned once per
// batch:
//   hhs_backward = D1 + ceil(N1/X') * D2'.
// Cheaper than the forward order when C1 is much smaller than C2.
AlgorithmCost HhnlBackwardCost(const CostInputs& in);

// Batch size X' of the backward order (fractional; < 1 means infeasible).
double HhnlBackwardBatchSize(const CostInputs& in);

// Canonical phase labels, shared between the cost model's per-phase
// prediction (CostPhases below) and the executors' runtime reporting
// (obs/query_stats.h), so EXPLAIN ANALYZE can pair the two by label.
namespace phase {
inline constexpr char kReadOuter[] = "read outer";           // HHNL fwd, HVNL
inline constexpr char kScanInner[] = "scan inner";           // HHNL fwd
inline constexpr char kReadInnerBatch[] = "read inner batch";  // HHNL bwd
inline constexpr char kRescanOuter[] = "rescan outer";       // HHNL bwd
inline constexpr char kLoadBtree[] = "load btree";           // HVNL
inline constexpr char kProbeEntries[] = "probe inverted entries";  // HVNL
inline constexpr char kMergeScan[] = "merge scan";           // VVM
}  // namespace phase

// One phase's share of an algorithm's predicted cost. The phases of one
// algorithm sum (exactly, up to floating-point rounding) to the
// corresponding AlgorithmCost.seq / AlgorithmCost.rand totals.
struct PhaseCost {
  std::string label;
  double seq = 0;
  double rand = 0;
};

// Decomposes the predicted cost of `algorithm` into its phases, using the
// same formulas and case analysis as HhnlCost/HvnlCost/VvmCost (and
// HhnlBackwardCost when `hhnl_backward` is set). Empty when the algorithm
// is infeasible for these inputs.
std::vector<PhaseCost> CostPhases(Algorithm algorithm, const CostInputs& in,
                                  bool hhnl_backward = false);

// Evaluates all three algorithms.
struct CostComparison {
  AlgorithmCost hhnl;
  AlgorithmCost hvnl;
  AlgorithmCost vvm;

  const AlgorithmCost& of(Algorithm a) const;
  AlgorithmCost& of(Algorithm a);

  // Cheapest algorithm under the sequential (resp. random) device model.
  Algorithm BestSequential() const;
  Algorithm BestRandom() const;
};

CostComparison CompareCosts(const CostInputs& in);

}  // namespace textjoin

#endif  // TEXTJOIN_COST_COST_MODEL_H_
