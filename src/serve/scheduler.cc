#include "serve/scheduler.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <utility>

#include "common/logging.h"
#include "dynamic/compaction.h"
#include "storage/disk.h"

namespace textjoin {

namespace {

// The accumulator holds one double per inner document; its footprint in
// pages is what the governor's memory budget caps (forcing multi-partition
// degraded execution, exactly like HVNL under a shrunken budget).
int64_t AccumulatorPages(int64_t num_documents, int64_t page_size) {
  int64_t bytes = num_documents * static_cast<int64_t>(sizeof(double));
  return std::max<int64_t>(1, (bytes + page_size - 1) / page_size);
}

}  // namespace

// An immutable view of one collection at one epoch. Queries pin the
// snapshot current when they are admitted and execute every step against
// it; writes swap the Served's snapshot pointer for a new one, never
// mutating an existing snapshot (aux is built lazily but depends only on
// the snapshot's own frozen state). The base/index shared_ptrs keep a
// compacted-away generation alive until the last pinned query finishes.
struct QueryScheduler::Snapshot {
  int64_t epoch = 1;
  std::shared_ptr<const DocumentCollection> base;
  std::shared_ptr<const InvertedFile> index;
  bool dynamic = false;

  // Dynamic-only live state, frozen at snapshot time.
  bool any_dead = false;
  std::vector<char> alive;      // over base DocIds
  std::vector<Document> delta;  // alive delta docs, insertion order;
                                // snapshot id of the j-th is base_n + j
  int64_t num_live = 0;
  std::unordered_map<TermId, int64_t> merged_df;

  // Scoring aux per SimilarityConfig combination, built on first use
  // (catalog setup, like SimilarityContext before a join).
  struct Aux {
    bool built = false;
    IdfWeights idf;
    DocumentNorms norms;
  };
  Aux aux[4];

  static int AuxSlot(const SimilarityConfig& config) {
    return (config.cosine_normalize ? 2 : 0) + (config.use_idf ? 1 : 0);
  }

  Result<const Aux*> EnsureAux(const SimilarityConfig& config) {
    Aux& a = aux[AuxSlot(config)];
    if (a.built) return &a;
    if (!dynamic) {
      a.idf = IdfWeights(*base, *base, config);
      TEXTJOIN_ASSIGN_OR_RETURN(a.norms,
                                DocumentNorms::Create(*base, a.idf, config));
      a.built = true;
      return &a;
    }
    // Live merged statistics, the delta_join idiom: idf from the live
    // df map (ln(1 + N/df) == ln(1 + 2N/2df) bit for bit, so this matches
    // the static IdfWeights(c, c) a rebuild would compute), base norms
    // from the static scan under that idf, delta norms from the identical
    // per-cell expression.
    a.idf = IdfWeights::FromMergedStats(static_cast<double>(num_live),
                                        merged_df, config.use_idf);
    if (config.cosine_normalize) {
      TEXTJOIN_ASSIGN_OR_RETURN(DocumentNorms base_norms,
                                DocumentNorms::Create(*base, a.idf, config));
      std::vector<double> norms = base_norms.values();
      norms.reserve(norms.size() + delta.size());
      for (const Document& d : delta) {
        if (!config.use_idf) {
          norms.push_back(d.Norm());
        } else {
          double s = 0;
          for (const DCell& c : d.cells()) {
            s += static_cast<double>(c.weight) *
                 static_cast<double>(c.weight) * a.idf.Squared(c.term);
          }
          norms.push_back(std::sqrt(s));
        }
      }
      a.norms = DocumentNorms::FromVector(std::move(norms));
    }
    a.built = true;
    return &a;
  }
};

struct QueryScheduler::Served {
  std::string name;
  // Non-null for dynamic collections. After a wound the pointer may
  // dangle (the owner reopened the collection); it is never dereferenced
  // until ReattachDynamic replaces it.
  DynamicCollection* dc = nullptr;
  bool wounded = false;
  std::shared_ptr<Snapshot> snapshot;
};

struct QueryScheduler::Task {
  int64_t id = 0;
  ServeQuery query;
  Served* served = nullptr;
  std::shared_ptr<Snapshot> snap;  // pinned at admission
  const Snapshot::Aux* aux = nullptr;
  std::vector<DCell> cells;  // normalized query vector, terms ascending
  double query_norm = 1;
  double predicted_cost_pages = 0;
  int64_t pages_needed = 1;  // accumulator footprint = memory claim

  int64_t ticket = -1;
  std::unique_ptr<QueryGovernor> governor;
  std::string key;
  bool hit = false;
  std::vector<Match> hit_matches;

  TopKAccumulator topk{0};
  std::vector<double> acc;
  int64_t partitions = 1;
  int64_t part = 0;
  int64_t docs_per_part = 0;
  DocId part_lo = 0;
  DocId part_hi = 0;
  size_t term_idx = 0;
  bool delta_pending = false;  // base partitions done; delta docs next

  int64_t attempt = 0;  // failed admission tries so far
  double retry_at_ms = 0;

  bool done = false;
  bool finished = false;  // record fully written
  QueryRecord record;

  double Finalize(double accumulated, DocId doc) const {
    if (!query.similarity.cosine_normalize) return accumulated;
    double denom = aux->norms.of(doc) * query_norm;
    return denom > 0 ? accumulated / denom : 0.0;
  }
};

struct QueryScheduler::PendingWrite {
  int64_t id = 0;
  ServeWrite write;
  Served* served = nullptr;
  Document doc;  // tokenized insert payload
  bool finished = false;
  WriteRecord record;
};

struct QueryScheduler::Compaction {
  PendingWrite* write = nullptr;
  Served* served = nullptr;
  std::unique_ptr<CompactionJob> job;
  std::unique_ptr<QueryGovernor> governor;
};

QueryScheduler::QueryScheduler(Disk* disk, Vocabulary* vocabulary,
                               ServeOptions options)
    : disk_(disk),
      vocabulary_(vocabulary),
      options_(std::move(options)),
      pool_(std::make_unique<BufferPool>(
          disk, std::max<int64_t>(1, options_.buffer_pool_pages))),
      admission_(options_.admission),
      cache_(options_.result_cache_entries),
      registrar_(options_.shared_scans),
      retry_(options_.retry) {
  if (!options_.tenants.empty()) {
    Status st = pool_->Partition(options_.tenants);
    TEXTJOIN_CHECK(st.ok());
  }
}

QueryScheduler::~QueryScheduler() = default;

Status QueryScheduler::AddCollection(const std::string& name,
                                     const DocumentCollection* collection,
                                     const InvertedFile* index) {
  if (name.empty() || collection == nullptr || index == nullptr) {
    return Status::InvalidArgument(
        "serving needs a named collection and its inverted file");
  }
  if (collections_.count(name) != 0) {
    return Status::AlreadyExists("collection '" + name +
                                 "' is already registered for serving");
  }
  auto served = std::make_unique<Served>();
  served->name = name;
  auto snap = std::make_shared<Snapshot>();
  snap->epoch = 1;
  // Non-owning: static collections are owned by the caller for the
  // scheduler's whole lifetime.
  snap->base = std::shared_ptr<const DocumentCollection>(
      std::shared_ptr<const void>(), collection);
  snap->index = std::shared_ptr<const InvertedFile>(
      std::shared_ptr<const void>(), index);
  served->snapshot = std::move(snap);
  collections_[name] = std::move(served);
  return Status::OK();
}

Status QueryScheduler::AddDynamicCollection(const std::string& name,
                                            DynamicCollection* dc) {
  if (name.empty() || dc == nullptr) {
    return Status::InvalidArgument(
        "serving needs a named dynamic collection");
  }
  if (collections_.count(name) != 0) {
    return Status::AlreadyExists("collection '" + name +
                                 "' is already registered for serving");
  }
  auto served = std::make_unique<Served>();
  served->name = name;
  served->dc = dc;
  RefreshSnapshot(served.get());
  collections_[name] = std::move(served);
  return Status::OK();
}

Status QueryScheduler::ReattachDynamic(const std::string& name,
                                       DynamicCollection* dc) {
  auto it = collections_.find(name);
  if (it == collections_.end()) {
    return Status::NotFound("collection '" + name +
                            "' is not registered for serving");
  }
  if (it->second->dc == nullptr) {
    return Status::InvalidArgument("collection '" + name +
                                   "' is not dynamic");
  }
  if (dc == nullptr) {
    return Status::InvalidArgument("reattach needs a dynamic collection");
  }
  it->second->dc = dc;
  it->second->wounded = false;
  RefreshSnapshot(it->second.get());
  cache_.EraseCollection(name);
  return Status::OK();
}

void QueryScheduler::RefreshSnapshot(Served* served) {
  DynamicCollection* dc = served->dc;
  auto snap = std::make_shared<Snapshot>();
  snap->epoch = dc->epoch();
  snap->dynamic = true;
  snap->base = dc->base_shared();
  snap->index = dc->index_shared();
  snap->alive = dc->base_alive();
  for (char a : snap->alive) {
    if (!a) {
      snap->any_dead = true;
      break;
    }
  }
  for (const DynamicCollection::DeltaDoc* d : dc->AliveDelta()) {
    snap->delta.push_back(d->doc);
  }
  snap->num_live = dc->num_live_documents();
  snap->merged_df = dc->MergedDfMap();
  served->snapshot = std::move(snap);
}

void QueryScheduler::InvalidateOnWrite(const std::string& name) {
  cache_.EraseCollection(name);
  // Scans registered earlier this round belong to the pre-write epoch.
  registrar_.InvalidateRound();
}

Status QueryScheduler::BumpEpoch(const std::string& name) {
  auto it = collections_.find(name);
  if (it == collections_.end()) {
    return Status::NotFound("collection '" + name +
                            "' is not registered for serving");
  }
  Served* served = it->second.get();
  if (served->dc != nullptr && !served->wounded) {
    RefreshSnapshot(served);
  } else if (served->dc == nullptr) {
    auto snap = std::make_shared<Snapshot>();
    snap->epoch = served->snapshot->epoch + 1;
    snap->base = served->snapshot->base;
    snap->index = served->snapshot->index;
    served->snapshot = std::move(snap);
  }
  cache_.EraseCollection(name);
  return Status::OK();
}

int64_t QueryScheduler::epoch(const std::string& name) const {
  auto it = collections_.find(name);
  return it == collections_.end() ? -1 : it->second->snapshot->epoch;
}

bool QueryScheduler::wounded(const std::string& name) const {
  auto it = collections_.find(name);
  return it != collections_.end() && it->second->wounded;
}

Result<int64_t> QueryScheduler::Submit(const ServeQuery& query) {
  auto it = collections_.find(query.collection);
  if (it == collections_.end()) {
    return Status::NotFound("collection '" + query.collection +
                            "' is not registered for serving");
  }
  if (query.lambda <= 0) {
    return Status::InvalidArgument("lambda must be positive");
  }
  if (pool_->partitioned() && pool_->tenant_quota(query.tenant) < 0) {
    return Status::InvalidArgument("unknown tenant '" + query.tenant +
                                   "' in partitioned serving pool");
  }
  auto task = std::make_unique<Task>();
  task->id = next_id_++;
  task->query = query;
  task->served = it->second.get();

  if (!query.cells.empty()) {
    auto doc = Document::FromUnsorted(query.cells);
    TEXTJOIN_RETURN_IF_ERROR(doc.status());
    task->cells = doc.value().cells();
  } else {
    auto doc = tokenizer_.MakeDocument(query.text, vocabulary_);
    TEXTJOIN_RETURN_IF_ERROR(doc.status());
    task->cells = doc.value().cells();
  }

  // Admission estimates against the snapshot current at submission; the
  // authoritative figures are re-derived from the ADMISSION snapshot in
  // ActivateTask (writes may land in between).
  const Snapshot* snap = task->served->snapshot.get();
  task->pages_needed =
      AccumulatorPages(snap->base->num_documents(), disk_->page_size());
  task->predicted_cost_pages = static_cast<double>(task->pages_needed);
  for (const DCell& c : task->cells) {
    int64_t entry = snap->index->FindEntry(c.term);
    if (entry >= 0) {
      task->predicted_cost_pages +=
          static_cast<double>(snap->index->EntryPageSpan(entry));
    }
  }

  task->record.id = task->id;
  task->record.tenant = query.tenant;
  task->record.arrival_ms = query.arrival_ms;
  int64_t id = task->id;
  tasks_.push_back(std::move(task));
  return id;
}

Result<int64_t> QueryScheduler::SubmitWrite(const ServeWrite& write) {
  auto it = collections_.find(write.collection);
  if (it == collections_.end()) {
    return Status::NotFound("collection '" + write.collection +
                            "' is not registered for serving");
  }
  if (it->second->dc == nullptr) {
    return Status::InvalidArgument(
        "collection '" + write.collection +
        "' is static; writes need a dynamic collection");
  }
  auto w = std::make_unique<PendingWrite>();
  w->id = next_write_id_++;
  w->write = write;
  w->served = it->second.get();
  if (write.kind == ServeWrite::Kind::kInsert) {
    if (!write.cells.empty()) {
      auto doc = Document::FromUnsorted(write.cells);
      TEXTJOIN_RETURN_IF_ERROR(doc.status());
      w->doc = std::move(doc).value();
    } else {
      auto doc = tokenizer_.MakeDocument(write.text, vocabulary_);
      TEXTJOIN_RETURN_IF_ERROR(doc.status());
      w->doc = std::move(doc).value();
    }
  } else if (write.kind == ServeWrite::Kind::kDelete && write.key == 0) {
    return Status::InvalidArgument("delete needs a document key");
  }
  w->record.id = w->id;
  w->record.collection = write.collection;
  w->record.kind = write.kind == ServeWrite::Kind::kInsert   ? "insert"
                   : write.kind == ServeWrite::Kind::kDelete ? "delete"
                                                             : "compact";
  w->record.key = write.key;
  w->record.arrival_ms = write.arrival_ms;
  int64_t id = w->id;
  writes_.push_back(std::move(w));
  return id;
}

std::vector<WriteRecord> QueryScheduler::TakeWriteRecords() {
  std::vector<WriteRecord> out = std::move(write_records_);
  write_records_.clear();
  return out;
}

void QueryScheduler::Advance(double ms) {
  if (ms <= 0) return;
  now_ms_ += ms;
  admission_.AdvanceTimeMs(ms);
}

void QueryScheduler::ApplyWriteOp(PendingWrite* write,
                                  std::vector<Compaction>* compacting) {
  WriteRecord& r = write->record;
  r.arrival_ms = std::max(write->write.arrival_ms, now_ms_);
  Served* served = write->served;
  auto finish = [&](const char* outcome, const Status& status) {
    r.outcome = outcome;
    if (!status.ok()) r.error = status.message();
    r.finish_ms = now_ms_;
    write->finished = true;
  };
  if (served->wounded) {
    finish("failed",
           Status::FailedPrecondition(
               "collection '" + served->name +
               "' is wounded by an earlier write failure; reopen it and "
               "ReattachDynamic"));
    return;
  }
  DynamicCollection* dc = served->dc;
  switch (write->write.kind) {
    case ServeWrite::Kind::kInsert: {
      Result<DocKey> key = dc->Insert(write->doc);
      Advance(options_.ms_per_write);
      if (!key.ok()) {
        // WAL-first: the in-memory state did not change, but the WAL
        // writer must not be reused after a failed append.
        served->wounded = true;
        finish("failed", key.status());
        return;
      }
      r.key = key.value();
      RefreshSnapshot(served);
      InvalidateOnWrite(served->name);
      r.epoch_after = dc->epoch();
      finish("applied", Status::OK());
      return;
    }
    case ServeWrite::Kind::kDelete: {
      Status st = dc->Delete(write->write.key);
      Advance(options_.ms_per_write);
      if (!st.ok()) {
        // A missing key is a semantic miss, not a broken log.
        if (st.code() != StatusCode::kNotFound) served->wounded = true;
        finish("failed", st);
        return;
      }
      RefreshSnapshot(served);
      InvalidateOnWrite(served->name);
      r.epoch_after = dc->epoch();
      finish("applied", Status::OK());
      return;
    }
    case ServeWrite::Kind::kCompact: {
      auto job = CompactionJob::Begin(
          dc, std::max<int64_t>(1, options_.compact_docs_per_slice));
      if (!job.ok()) {
        finish("failed", job.status());
        return;
      }
      Compaction c;
      c.write = write;
      c.served = served;
      c.job = std::move(job).value();
      GovernorLimits limits;
      limits.memory_budget_pages = options_.compact_memory_budget_pages;
      c.governor = std::make_unique<QueryGovernor>(limits);
      if (write->write.foreground) {
        // The stall the background path exists to avoid: every slice runs
        // back to back at arrival, with no query stepping in between.
        while (!StepCompactionSlice(&c)) {
        }
        return;
      }
      compacting->push_back(std::move(c));
      return;
    }
  }
}

bool QueryScheduler::StepCompactionSlice(Compaction* c) {
  Result<bool> done = c->job->Step(c->governor.get());
  Advance(options_.compact_ms_per_slice);
  WriteRecord& r = c->write->record;
  if (!done.ok()) {
    const Status& st = done.status();
    r.slices = c->job->slices();
    r.finish_ms = now_ms_;
    r.error = st.message();
    if (c->job->committed()) {
      // The new generation is durable on disk but the in-memory install
      // failed: the served state no longer matches the device. Queries
      // keep the last good snapshot; recovery is reopen + reattach.
      c->served->wounded = true;
      r.outcome = "failed";
    } else {
      r.outcome =
          st.code() == StatusCode::kCancelled ? "aborted" : "failed";
    }
    c->write->finished = true;
    return true;
  }
  if (!done.value()) return false;
  RefreshSnapshot(c->served);
  InvalidateOnWrite(c->served->name);
  r.slices = c->job->slices();
  r.epoch_after = c->served->dc->epoch();
  r.outcome = "applied";
  r.finish_ms = now_ms_;
  c->write->finished = true;
  return true;
}

Status QueryScheduler::ActivateTask(Task* task, double queue_wait_ms) {
  const ServeQuery& q = task->query;
  // Snapshot-at-admission: everything this query reads from here on —
  // postings, liveness, delta, idf, norms, epoch — comes from this one
  // immutable snapshot, regardless of writes landing while it runs.
  task->snap = task->served->snapshot;
  Snapshot* snap = task->snap.get();

  auto aux = snap->EnsureAux(q.similarity);
  TEXTJOIN_RETURN_IF_ERROR(aux.status());
  task->aux = aux.value();
  task->query_norm = 1;
  if (q.similarity.cosine_normalize) {
    double sum = 0;
    for (const DCell& c : task->cells) {
      double w = static_cast<double>(c.weight);
      sum += w * w * task->aux->idf.Squared(c.term);
    }
    task->query_norm = std::sqrt(sum);
  }
  task->pages_needed =
      AccumulatorPages(snap->base->num_documents(), disk_->page_size());

  GovernorLimits limits;
  limits.deadline_ms = q.deadline_ms > 0
                           ? q.deadline_ms
                           : options_.admission.default_deadline_ms;
  int64_t budget = 0;
  if (pool_->partitioned()) budget = pool_->tenant_quota(q.tenant);
  int64_t granted = task->record.governance.memory_granted_pages;
  if (granted > 0 && granted < task->pages_needed) {
    budget = budget > 0 ? std::min(budget, granted) : granted;
  }
  limits.memory_budget_pages = budget;
  task->governor = std::make_unique<QueryGovernor>(limits);
  if (q.cancel_at_checkpoint > 0) {
    task->governor->CancelAtCheckpoint(q.cancel_at_checkpoint);
  }

  task->record.start_ms = now_ms_;
  task->record.queue_wait_ms = queue_wait_ms;
  task->record.serving.queue_wait_ms = queue_wait_ms;
  task->record.serving.tenant = q.tenant;
  task->record.serving.snapshot_epoch = snap->epoch;
  if (pool_->partitioned()) {
    task->record.serving.tenant_quota_pages = pool_->tenant_quota(q.tenant);
  }

  // Cache lookup happens at admission, against the snapshot's epoch — an
  // epoch bump between submission and admission correctly misses, and a
  // same-round write-then-read can never see the pre-write entry (the
  // write erased it before this query could be admitted).
  task->key = ServeQueryCacheKey(q.collection, snap->epoch, task->cells,
                                 q.lambda, q.similarity, q.pruning);
  if (auto cached = cache_.Lookup(task->key); cached.has_value()) {
    task->hit = true;
    task->hit_matches = cached->rows.empty() ? std::vector<Match>{}
                                             : cached->rows.front().matches;
    return Status::OK();
  }

  // Cold execution setup: partition the accumulator under the governor's
  // memory budget (PR 4 degraded path — more partitions, more re-fetches,
  // identical bits).
  const int64_t n = snap->base->num_documents();
  int64_t budget_pages = task->governor->CapBufferPages(task->pages_needed);
  task->partitions = (task->pages_needed + budget_pages - 1) /
                     std::max<int64_t>(1, budget_pages);
  task->docs_per_part =
      task->partitions > 0 ? (n + task->partitions - 1) / task->partitions : 0;
  task->topk = TopKAccumulator(q.lambda);
  task->part = 0;
  task->part_lo = 0;
  task->part_hi =
      static_cast<DocId>(std::min<int64_t>(task->docs_per_part, n));
  task->acc.assign(static_cast<size_t>(task->part_hi - task->part_lo), 0.0);
  task->term_idx = 0;
  task->delta_pending = false;
  return Status::OK();
}

void QueryScheduler::FlushPartition(Task* task) {
  const Snapshot* snap = task->snap.get();
  for (size_t i = 0; i < task->acc.size(); ++i) {
    double a = task->acc[i];
    if (a > 0) {
      DocId doc = task->part_lo + static_cast<DocId>(i);
      // Deleted base documents still sit in the snapshot's posting lists;
      // they are dropped here, never surfacing in results.
      if (snap->any_dead && !snap->alive[doc]) continue;
      task->topk.Add(doc, task->Finalize(a, doc));
    }
  }
  ++task->part;
  if (task->part >= task->partitions) {
    // Base partitions exhausted: delta documents (in memory, no I/O) are
    // scored in one final step at snapshot ids base_n + j.
    if (!snap->delta.empty() && !task->cells.empty()) {
      task->delta_pending = true;
    } else {
      task->done = true;
    }
    return;
  }
  const int64_t n = snap->base->num_documents();
  task->part_lo = task->part_hi;
  task->part_hi = static_cast<DocId>(
      std::min<int64_t>(task->part_lo + task->docs_per_part, n));
  task->acc.assign(static_cast<size_t>(task->part_hi - task->part_lo), 0.0);
  task->term_idx = 0;
}

Result<double> QueryScheduler::StepTask(Task* task) {
  QueryGovernor* governor = task->governor.get();
  // Steps are serialized, so scoping the stepping query's governor onto
  // the shared disk routes PollIo cancellation to the right query.
  ScopedDiskGovernor scoped(disk_, governor);
  TEXTJOIN_RETURN_IF_ERROR(governor->Checkpoint("serve step"));

  double cost = options_.ms_per_step;
  if (task->hit) {
    // A cached response still takes one step: look up, serialize, reply.
    task->done = true;
    governor->ChargeSimulatedMs(cost);
    return cost;
  }
  if (task->delta_pending) {
    // Score every snapshot delta document: per document, contributions
    // accumulate in ascending query-term order — the same summation order
    // the partitioned base pass uses, so a rebuild that holds these
    // documents in its base produces the identical doubles.
    const Snapshot* snap = task->snap.get();
    const int64_t base_n = snap->base->num_documents();
    for (size_t j = 0; j < snap->delta.size(); ++j) {
      const std::vector<DCell>& dcells = snap->delta[j].cells();
      double acc = 0;
      size_t ci = 0;
      for (const DCell& qc : task->cells) {
        while (ci < dcells.size() && dcells[ci].term < qc.term) ++ci;
        if (ci < dcells.size() && dcells[ci].term == qc.term) {
          acc += static_cast<double>(qc.weight) *
                 static_cast<double>(dcells[ci].weight) *
                 task->aux->idf.Squared(qc.term);
        }
      }
      if (acc > 0) {
        const DocId doc = static_cast<DocId>(base_n + static_cast<int64_t>(j));
        task->topk.Add(doc, task->Finalize(acc, doc));
      }
    }
    task->delta_pending = false;
    task->done = true;
    governor->ChargeSimulatedMs(cost);
    return cost;
  }
  if (task->term_idx >= task->cells.size()) {
    // Empty query (or end of a partition's terms): flush and move on.
    FlushPartition(task);
    governor->ChargeSimulatedMs(cost);
    return cost;
  }

  const DCell& qc = task->cells[task->term_idx];
  auto fetched = registrar_.Fetch(*task->snap->index, qc.term, pool_.get(),
                                  task->query.tenant);
  TEXTJOIN_RETURN_IF_ERROR(fetched.status());
  if (fetched.value().shared) {
    ++task->record.serving.shared_scans;
  } else {
    ++task->record.serving.scan_fetches;
  }
  const double factor = task->aux->idf.Squared(qc.term);
  const double qw = static_cast<double>(qc.weight);
  for (const ICell& ic : *fetched.value().cells) {
    if (ic.doc < task->part_lo) continue;
    if (ic.doc >= task->part_hi) break;  // i-cells ascend by document
    task->acc[static_cast<size_t>(ic.doc - task->part_lo)] +=
        qw * static_cast<double>(ic.weight) * factor;
  }
  cost +=
      static_cast<double>(fetched.value().pages_read) * options_.ms_per_page;
  if (pool_->partitioned()) {
    task->record.serving.tenant_peak_pages =
        std::max(task->record.serving.tenant_peak_pages,
                 pool_->tenant_frames(task->query.tenant));
  }
  ++task->term_idx;
  if (task->term_idx >= task->cells.size()) FlushPartition(task);
  governor->ChargeSimulatedMs(cost);
  return cost;
}

void QueryScheduler::FinishTask(Task* task, std::string outcome,
                                const Status& status) {
  QueryRecord& r = task->record;
  r.finish_ms = now_ms_;
  r.latency_ms = r.finish_ms - r.arrival_ms;
  r.outcome = std::move(outcome);
  if (!status.ok()) r.error = status.message();

  if (r.outcome == "completed") {
    if (task->hit) {
      r.matches = std::move(task->hit_matches);
    } else {
      r.matches = task->topk.TakeSorted();
      // Only a FULLY completed query is inserted — a cancelled or shed
      // query can never poison the cache — and only while its snapshot is
      // still the collection's current one: a result computed at epoch E
      // must not be inserted after a write moved the collection to E+1
      // (the write's invalidation already ran; inserting now would plant
      // a stale entry the next E+1 lookup could not tell apart).
      CachedResult value;
      value.rows.push_back(OuterMatches{0, r.matches});
      if (task->snap != nullptr &&
          task->snap->epoch == task->served->snapshot->epoch) {
        cache_.Insert(task->key, std::move(value), {task->query.collection});
      }
    }
  }

  if (task->governor != nullptr) {
    double queue_wait = r.governance.queue_wait_ms;
    std::string admission = r.governance.admission;
    int64_t granted = r.governance.memory_granted_pages;
    r.governance = GovernanceStats::FromGovernor(*task->governor);
    r.governance.queue_wait_ms = queue_wait;
    r.governance.admission = admission;
    r.governance.memory_granted_pages = granted;
  }
  r.cache_hit = task->hit;
  r.serving.active = true;
  r.serving.cache_hit = task->hit;
  r.serving.cache_hits = cache_.stats().hits;
  r.serving.cache_misses = cache_.stats().misses;

  if (task->ticket >= 0 &&
      admission_.StateOf(task->ticket) == TicketState::kRunning) {
    admission_.Release(task->ticket, 0);
  }
  task->done = true;
  task->finished = true;
}

void QueryScheduler::RecordShed(Task* task, double queue_wait_ms,
                                const Status& status) {
  QueryRecord& r = task->record;
  r.outcome = "shed";
  r.error = status.message();
  r.queue_wait_ms = queue_wait_ms;
  r.finish_ms = now_ms_;
  r.latency_ms = r.finish_ms - r.arrival_ms;
  r.governance.active = true;
  r.governance.admission = "shed";
  r.governance.outcome = "cancelled";
  r.governance.queue_wait_ms = queue_wait_ms;
  r.serving.active = true;
  r.serving.tenant = task->query.tenant;
  r.serving.queue_wait_ms = queue_wait_ms;
  task->done = true;
  task->finished = true;
  any_shed_ = true;
}

Result<std::vector<QueryRecord>> QueryScheduler::Run() {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<std::unique_ptr<Task>> batch = std::move(tasks_);
  tasks_.clear();
  std::vector<std::unique_ptr<PendingWrite>> wbatch = std::move(writes_);
  writes_.clear();
  std::stable_sort(batch.begin(), batch.end(),
                   [](const std::unique_ptr<Task>& a,
                      const std::unique_ptr<Task>& b) {
                     return a->query.arrival_ms < b->query.arrival_ms;
                   });
  std::stable_sort(wbatch.begin(), wbatch.end(),
                   [](const std::unique_ptr<PendingWrite>& a,
                      const std::unique_ptr<PendingWrite>& b) {
                     return a->write.arrival_ms < b->write.arrival_ms;
                   });

  size_t next = 0;
  size_t wnext = 0;
  std::vector<Task*> active;
  std::vector<Task*> parked;
  std::vector<Task*> retryq;  // shed, waiting out their backoff
  std::vector<Compaction> compacting;

  // A shed query gets a bounded, deterministic second (third, ...) chance
  // instead of a hard failure, when the policy allows: it re-arrives after
  // an exponential backoff, keeping its original arrival time so the
  // latency it reports covers the whole ordeal.
  auto shed_or_retry = [&](Task* task, double waited, const Status& st) {
    ++task->attempt;
    if (retry_.ShouldRetry(st, task->attempt)) {
      task->retry_at_ms = now_ms_ + retry_.BackoffMs(task->attempt);
      ++task->record.serving.admission_retries;
      task->ticket = -1;
      retryq.push_back(task);
    } else {
      RecordShed(task, waited, st);
    }
  };

  auto arrive = [&](Task* task) -> Status {
    // The effective arrival: a query "arriving" before the clock (e.g.
    // submitted between Run() calls) arrives now. Retries keep theirs.
    if (task->attempt == 0) {
      task->record.arrival_ms = std::max(task->query.arrival_ms, now_ms_);
    }
    auto grant = admission_.Submit(task->predicted_cost_pages,
                                   task->pages_needed,
                                   task->query.deadline_ms);
    if (!grant.ok()) {
      shed_or_retry(task, 0, grant.status());
      return Status::OK();
    }
    task->ticket = grant.value().ticket;
    task->record.governance.memory_granted_pages =
        grant.value().memory_granted_pages;
    if (grant.value().outcome == AdmissionOutcome::kQueued) {
      task->record.governance.admission = "queued";
      parked.push_back(task);
      return Status::OK();
    }
    task->record.governance.admission = "admitted";
    task->record.governance.queue_wait_ms = grant.value().queue_wait_ms;
    Status st = ActivateTask(task, grant.value().queue_wait_ms);
    if (!st.ok()) {
      // Activation I/O failed (e.g. a norms scan hit a bad page): this
      // query failed, not the scheduler.
      FinishTask(task, "failed", st);
      return Status::OK();
    }
    active.push_back(task);
    return Status::OK();
  };

  // Admits everything due at the current clock, interleaving by arrival
  // time: writes beat queries (and retries) arriving at the same instant,
  // so a same-timestamp write-then-read sees the written state.
  auto admit_all = [&]() -> Status {
    for (;;) {
      double wt = wnext < wbatch.size() ? wbatch[wnext]->write.arrival_ms
                                        : kInf;
      double qt = next < batch.size() ? batch[next]->query.arrival_ms : kInf;
      double rt = kInf;
      size_t ri = retryq.size();
      for (size_t i = 0; i < retryq.size(); ++i) {
        if (retryq[i]->retry_at_ms < rt) {
          rt = retryq[i]->retry_at_ms;
          ri = i;
        }
      }
      if (wt <= now_ms_ && wt <= qt && wt <= rt) {
        ApplyWriteOp(wbatch[wnext].get(), &compacting);
        ++wnext;
        continue;
      }
      if (rt <= now_ms_ && rt <= qt) {
        Task* task = retryq[ri];
        retryq.erase(retryq.begin() + static_cast<int64_t>(ri));
        TEXTJOIN_RETURN_IF_ERROR(arrive(task));
        continue;
      }
      if (qt <= now_ms_) {
        TEXTJOIN_RETURN_IF_ERROR(arrive(batch[next].get()));
        ++next;
        continue;
      }
      return Status::OK();
    }
  };

  // Resolves a parked ticket the controller has already decided about.
  auto resolve_parked = [&](Task* task) -> Status {
    auto grant = admission_.Await(task->ticket);
    if (grant.ok()) {
      task->record.governance.queue_wait_ms = grant.value().queue_wait_ms;
      task->record.governance.memory_granted_pages =
          grant.value().memory_granted_pages;
      Status st = ActivateTask(task, grant.value().queue_wait_ms);
      if (!st.ok()) {
        FinishTask(task, "failed", st);
        return Status::OK();
      }
      active.push_back(task);
      return Status::OK();
    }
    double waited = admission_.shed_wait_ms(task->ticket);
    shed_or_retry(task, waited < 0 ? 0 : waited, grant.status());
    return Status::OK();
  };

  auto poll_parked = [&]() -> Status {
    for (auto it = parked.begin(); it != parked.end();) {
      TicketState state = admission_.StateOf((*it)->ticket);
      if (state == TicketState::kPromoted || state == TicketState::kTimedOut) {
        Task* task = *it;
        it = parked.erase(it);
        TEXTJOIN_RETURN_IF_ERROR(resolve_parked(task));
      } else {
        ++it;
      }
    }
    return Status::OK();
  };

  auto step_compactions = [&]() {
    for (auto it = compacting.begin(); it != compacting.end();) {
      if (StepCompactionSlice(&*it)) {
        it = compacting.erase(it);
      } else {
        ++it;
      }
    }
  };

  while (next < batch.size() || wnext < wbatch.size() || !active.empty() ||
         !parked.empty() || !retryq.empty() || !compacting.empty()) {
    TEXTJOIN_RETURN_IF_ERROR(admit_all());
    TEXTJOIN_RETURN_IF_ERROR(poll_parked());
    if (active.empty()) {
      if (!compacting.empty()) {
        // No queries to yield to: compaction soaks up the idle time, one
        // slice per job, the clock advancing underneath so arrivals and
        // queue timeouts interleave naturally.
        step_compactions();
        continue;
      }
      double t = kInf;
      if (next < batch.size()) t = std::min(t, batch[next]->query.arrival_ms);
      if (wnext < wbatch.size()) {
        t = std::min(t, wbatch[wnext]->write.arrival_ms);
      }
      for (Task* task : retryq) t = std::min(t, task->retry_at_ms);
      if (t < kInf) {
        // Idle: jump the clock to the next arrival / write / retry.
        Advance(t - now_ms_);
        TEXTJOIN_RETURN_IF_ERROR(admit_all());
        continue;
      }
      if (!parked.empty()) {
        // Nothing running and nothing arriving: the remaining waiters can
        // only be resolved directly (Await promotes or sheds them).
        std::vector<Task*> waiters;
        waiters.swap(parked);
        for (Task* task : waiters) {
          TEXTJOIN_RETURN_IF_ERROR(resolve_parked(task));
        }
        continue;
      }
      break;
    }

    // One round: every active query takes one step; same-round fetches of
    // the same posting list are shared.
    registrar_.BeginRound();
    std::vector<Task*> stepping = active;
    for (Task* task : stepping) {
      if (task->done) continue;
      auto cost = StepTask(task);
      if (!cost.ok()) {
        Advance(options_.ms_per_step);
        const Status& s = cost.status();
        const char* outcome = s.code() == StatusCode::kCancelled
                                  ? "cancelled"
                                  : s.code() == StatusCode::kDeadlineExceeded
                                        ? "deadline"
                                        : "failed";
        FinishTask(task, outcome, s);
      } else {
        Advance(cost.value());
        if (task->done) FinishTask(task, "completed", Status::OK());
      }
      // Arrivals — and writes — during the round join at its end; a write
      // landing mid-round invalidates the registrar so later fetches this
      // round cannot ride a pre-write scan.
      TEXTJOIN_RETURN_IF_ERROR(admit_all());
    }
    registrar_.EndRound();
    active.erase(std::remove_if(active.begin(), active.end(),
                                [](Task* t) { return t->done; }),
                 active.end());
    if (!compacting.empty()) {
      if (options_.compact_abort_on_shed && any_shed_) {
        // Overload: sacrifice the rewrite rather than the queries.
        for (Compaction& c : compacting) c.governor->Cancel();
      }
      // Background pacing: one slice per round, unless queries are queued
      // behind the ones running — then the compaction yields its slot.
      bool paused = options_.compact_pause_on_queue && !parked.empty() &&
                    !active.empty();
      if (!paused) step_compactions();
    }
    any_shed_ = false;
    TEXTJOIN_RETURN_IF_ERROR(poll_parked());
  }

  std::stable_sort(wbatch.begin(), wbatch.end(),
                   [](const std::unique_ptr<PendingWrite>& a,
                      const std::unique_ptr<PendingWrite>& b) {
                     return a->id < b->id;
                   });
  for (std::unique_ptr<PendingWrite>& w : wbatch) {
    TEXTJOIN_CHECK(w->finished);
    write_records_.push_back(std::move(w->record));
  }

  std::stable_sort(batch.begin(), batch.end(),
                   [](const std::unique_ptr<Task>& a,
                      const std::unique_ptr<Task>& b) { return a->id < b->id; });
  std::vector<QueryRecord> records;
  records.reserve(batch.size());
  for (std::unique_ptr<Task>& task : batch) {
    TEXTJOIN_CHECK(task->finished);
    records.push_back(std::move(task->record));
  }
  return records;
}

}  // namespace textjoin
