#ifndef TEXTJOIN_RELATIONAL_TEXT_JOIN_QUERY_H_
#define TEXTJOIN_RELATIONAL_TEXT_JOIN_QUERY_H_

#include <vector>

#include "planner/planner.h"
#include "relational/predicate.h"
#include "relational/table.h"
#include "serve/result_cache.h"
#include "storage/io_stats.h"

namespace textjoin {

// A query of the paper's Section 2 shape:
//
//   SELECT ...
//   FROM   inner_table I, outer_table O
//   WHERE  <inner predicates on I> AND <outer predicates on O>
//     AND  I.inner_text SIMILAR_TO(lambda) O.outer_text
//
// For every qualifying row of the outer table, report the lambda rows of
// the inner table whose text attribute is most similar to the outer row's
// text attribute. ("A.Resume SIMILAR_TO(20) P.Job_descr" makes Applicants
// the inner and Positions the outer table.)
struct TextJoinQuery {
  const Table* inner_table = nullptr;
  std::string inner_text_column;
  const Table* outer_table = nullptr;
  std::string outer_text_column;

  int64_t lambda = 20;
  SimilarityConfig similarity;

  // Query-lifecycle limits (exec/governor.h): the executor runs the join
  // under a QueryGovernor when either is set. The Database fills these
  // from its session `SET deadline_ms / memory_budget_pages` knobs.
  double deadline_ms = 0;
  int64_t memory_budget_pages = 0;

  std::vector<const Predicate*> inner_predicates;
  std::vector<const Predicate*> outer_predicates;

  // EXPLAIN ANALYZE: run the join with per-phase instrumentation and
  // return the predicted-vs-measured report in QueryResult::explain.
  bool explain_analyze = false;
  ExplainOptions explain_options;
};

// One result pair.
struct QueryResultRow {
  int64_t outer_row = 0;
  int64_t inner_row = 0;
  double score = 0;
};

struct QueryResult {
  std::vector<QueryResultRow> rows;  // grouped by outer row, best first
  PlanChoice plan;                   // which algorithm ran and why
  IoStats io;                        // pages read by the join itself

  // Filled only under EXPLAIN ANALYZE: the per-phase statistics tree and
  // the rendered predicted-vs-measured report.
  QueryStats stats;
  std::string explain;
};

// Optional result-cache attachment for one Run (serve/result_cache.h).
// The Database fills it with its cache and the two collections' names and
// epochs; the executor keys the join below predicate evaluation — on the
// computed document subsets — so the same cache serves queries whose
// predicates differ but select the same documents. Only a fully completed
// join is inserted.
struct QueryCacheHook {
  ResultCache* cache = nullptr;
  std::string inner_name;
  int64_t inner_epoch = 0;
  std::string outer_name;
  int64_t outer_epoch = 0;
};

// Runs SIMILAR_TO queries: evaluates the selections, reduces the
// participating documents, lets the planner pick HHNL/HVNL/VVM, executes,
// and maps document numbers back to rows.
class TextJoinQueryExecutor {
 public:
  TextJoinQueryExecutor(SystemParams sys,
                        JoinPlanner::Options planner_options = {})
      : sys_(sys), planner_(planner_options) {}

  // `inner_index` / `outer_index` are optional; without them the planner
  // can only choose HHNL. `cache_hook` (optional) serves the join from the
  // attached ResultCache when the key matches a completed run.
  Result<QueryResult> Run(const TextJoinQuery& query,
                          const InvertedFile* inner_index = nullptr,
                          const InvertedFile* outer_index = nullptr,
                          const QueryCacheHook* cache_hook = nullptr) const;

 private:
  SystemParams sys_;
  JoinPlanner planner_;
};

}  // namespace textjoin

#endif  // TEXTJOIN_RELATIONAL_TEXT_JOIN_QUERY_H_
