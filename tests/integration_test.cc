#include <gtest/gtest.h>

#include "storage/disk_manager.h"
#include "join/hhnl.h"
#include "join/hvnl.h"
#include "join/vvm.h"
#include "planner/planner.h"
#include "sim/synthetic.h"
#include "test_util.h"

namespace textjoin {
namespace {

using testing_util::BruteForceJoin;
using testing_util::MakeFixture;

// End-to-end: synthetic generation -> collections -> inverted files ->
// planner -> join -> result validation, at a size where all machinery
// (multi-page documents, multi-level B+trees, batching, caching,
// partitioned VVM passes) engages.
TEST(IntegrationTest, SyntheticPipelineAllAlgorithms) {
  SimulatedDisk disk(512);
  SyntheticSpec spec1;
  spec1.num_documents = 120;
  spec1.avg_terms_per_doc = 24;
  spec1.vocabulary_size = 300;
  spec1.seed = 1;
  SyntheticSpec spec2 = spec1;
  spec2.num_documents = 80;
  spec2.avg_terms_per_doc = 18;
  spec2.seed = 2;

  auto c1 = GenerateCollection(&disk, "c1", spec1);
  auto c2 = GenerateCollection(&disk, "c2", spec2);
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());
  auto f = MakeFixture(&disk, std::move(c1).value(), std::move(c2).value());

  JoinSpec spec;
  spec.lambda = 10;
  JoinContext ctx = f->Context(60);
  JoinResult expected = BruteForceJoin(f->inner, f->outer, f->simctx, spec);

  HhnlJoin hhnl;
  HvnlJoin hvnl;
  VvmJoin vvm;
  auto r1 = hhnl.Run(ctx, spec);
  auto r2 = hvnl.Run(ctx, spec);
  auto r3 = vvm.Run(ctx, spec);
  ASSERT_TRUE(r1.ok()) << r1.status();
  ASSERT_TRUE(r2.ok()) << r2.status();
  ASSERT_TRUE(r3.ok()) << r3.status();
  EXPECT_EQ(*r1, expected);
  EXPECT_EQ(*r2, expected);
  EXPECT_EQ(*r3, expected);

  JoinPlanner planner;
  PlanChoice chosen;
  auto planned = planner.Execute(ctx, spec, &chosen);
  ASSERT_TRUE(planned.ok());
  EXPECT_EQ(*planned, expected);
}

// A self-join (clustering, per the paper's introduction): C1 == C2 as two
// physical copies. Every document's best match must be itself.
TEST(IntegrationTest, SelfJoinFindsSelfFirst) {
  SimulatedDisk disk(512);
  SyntheticSpec spec1;
  spec1.num_documents = 60;
  spec1.avg_terms_per_doc = 12;
  spec1.vocabulary_size = 200;
  spec1.seed = 3;
  auto c1 = GenerateCollection(&disk, "c1", spec1);
  ASSERT_TRUE(c1.ok());
  auto c2 = CopyCollection(&disk, "c2", *c1);
  ASSERT_TRUE(c2.ok());
  // Cosine scores make self-similarity exactly 1.0, the maximum.
  SimilarityConfig config;
  config.cosine_normalize = true;
  auto f = MakeFixture(&disk, std::move(c1).value(), std::move(c2).value(),
                       config);

  JoinSpec spec;
  spec.lambda = 3;
  spec.similarity = config;
  HhnlJoin join;
  auto r = join.Run(f->Context(100), spec);
  ASSERT_TRUE(r.ok());
  for (const OuterMatches& om : *r) {
    ASSERT_FALSE(om.matches.empty());
    EXPECT_EQ(om.matches[0].doc, om.outer_doc)
        << "document " << om.outer_doc << " is most similar to itself";
  }
}

// Group-4 shape end-to-end: an originally small outer collection derived
// as a prefix of the inner one; results must agree with brute force and
// the planner should not pick HHNL blindly when the inner collection is
// much larger.
TEST(IntegrationTest, DerivedSmallOuterCollection) {
  SimulatedDisk disk(512);
  SyntheticSpec spec1;
  spec1.num_documents = 400;
  spec1.avg_terms_per_doc = 16;
  spec1.vocabulary_size = 500;
  spec1.seed = 4;
  auto c1 = GenerateCollection(&disk, "c1", spec1);
  ASSERT_TRUE(c1.ok());
  auto c2 = TakePrefix(&disk, "c2", *c1, 5);
  ASSERT_TRUE(c2.ok());
  auto f = MakeFixture(&disk, std::move(c1).value(), std::move(c2).value());

  JoinSpec spec;
  spec.lambda = 5;
  JoinContext ctx = f->Context(80);
  JoinResult expected = BruteForceJoin(f->inner, f->outer, f->simctx, spec);
  JoinPlanner planner;
  PlanChoice chosen;
  auto r = planner.Execute(ctx, spec, &chosen);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, expected);
}

// Group-5 shape: merged documents, VVM-friendly. All algorithms agree and
// VVM needs only one pass over each inverted file.
TEST(IntegrationTest, MergedDocumentsVvmFriendly) {
  SimulatedDisk disk(512);
  SyntheticSpec spec1;
  spec1.num_documents = 128;
  spec1.avg_terms_per_doc = 10;
  spec1.vocabulary_size = 4000;
  spec1.seed = 5;
  auto base = GenerateCollection(&disk, "base", spec1);
  ASSERT_TRUE(base.ok());
  auto big1 = MergeDocuments(&disk, "big1", *base, 16);
  auto big2 = MergeDocuments(&disk, "big2", *base, 16);
  ASSERT_TRUE(big1.ok());
  ASSERT_TRUE(big2.ok());
  EXPECT_EQ(big1->num_documents(), 8);
  auto f = MakeFixture(&disk, std::move(big1).value(),
                       std::move(big2).value());

  JoinSpec spec;
  spec.lambda = 3;
  JoinContext ctx = f->Context(50);
  VvmJoin vvm;
  EXPECT_EQ(VvmJoin::Passes(ctx, spec), 1);  // tiny N1*N2
  auto r = vvm.Run(ctx, spec);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, BruteForceJoin(f->inner, f->outer, f->simctx, spec));
}

}  // namespace
}  // namespace textjoin
