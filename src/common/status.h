#ifndef TEXTJOIN_COMMON_STATUS_H_
#define TEXTJOIN_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace textjoin {

// Error codes for the textjoin library. The library does not use C++
// exceptions; fallible operations return a Status or a Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kResourceExhausted,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
  // A transient failure (e.g. a flaky device read) that may succeed when
  // retried. The fault-tolerant I/O layer (storage/reliable_disk.h)
  // retries these with exponential backoff.
  kUnavailable,
  // Unrecoverable data corruption or loss: a checksum mismatch that
  // re-reads did not cure, or a permanently failed device region.
  kDataLoss,
  // The query was cooperatively stopped through its cancellation token
  // (exec/governor.h). Not an error of the data or the device: the work is
  // simply abandoned, and no partial result is returned.
  kCancelled,
  // The query's deadline expired before it finished — at a cooperative
  // checkpoint, an I/O poll, or mid-retry (the recovery layer's simulated
  // backoff counts against the deadline).
  kDeadlineExceeded,
};

// Returns a stable human-readable name ("OK", "INVALID_ARGUMENT", ...).
const char* StatusCodeToString(StatusCode code);

// A Status carries either success (ok) or an error code plus a message.
// Cheap to copy in the OK case (empty message).
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "INVALID_ARGUMENT: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

// True for errors a bounded re-read may cure (the retry layer's
// transient-vs-permanent classification).
inline bool IsTransientIoError(const Status& s) {
  return s.code() == StatusCode::kUnavailable;
}

// True for any I/O-layer failure — transient or data loss. The planner
// falls back to another algorithm when the chosen one dies with one of
// these (graceful degradation); logic errors (kInvalidArgument, ...) are
// never masked by a re-plan.
inline bool IsIoFailure(const Status& s) {
  return s.code() == StatusCode::kUnavailable ||
         s.code() == StatusCode::kDataLoss;
}

// True when the query was stopped on purpose — an explicit Cancel() or an
// expired deadline — rather than by a fault. Cancellation is never
// retried by the recovery layer and never masked by a planner fallback:
// the caller asked for the work to stop.
inline bool IsCancellation(const Status& s) {
  return s.code() == StatusCode::kCancelled ||
         s.code() == StatusCode::kDeadlineExceeded;
}

// True for admission-control rejections a client may retry later: the
// system shed load (queue full, memory budget exhausted, too many
// concurrent queries), not because the query itself is wrong.
inline bool IsRetriableAdmission(const Status& s) {
  return s.code() == StatusCode::kResourceExhausted;
}

// Result<T> holds either a value of type T or an error Status.
// Accessing the value of an error Result aborts (see logging.h CHECK).
template <typename T>
class Result {
 public:
  // Intentionally implicit so functions can `return value;` / `return status;`.
  Result(T value) : rep_(std::move(value)) {}
  Result(Status status) : rep_(std::move(status)) {}

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(rep_);
  }

  const T& value() const& { return std::get<T>(rep_); }
  T& value() & { return std::get<T>(rep_); }
  T&& value() && { return std::get<T>(std::move(rep_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> rep_;
};

// Propagates an error Status from an expression that yields a Status.
#define TEXTJOIN_RETURN_IF_ERROR(expr)            \
  do {                                            \
    ::textjoin::Status _st = (expr);              \
    if (!_st.ok()) return _st;                    \
  } while (0)

// Assigns the value of a Result expression to `lhs`, or propagates the error.
#define TEXTJOIN_ASSIGN_OR_RETURN(lhs, rexpr)     \
  auto TEXTJOIN_CONCAT_(_res_, __LINE__) = (rexpr);              \
  if (!TEXTJOIN_CONCAT_(_res_, __LINE__).ok())                   \
    return TEXTJOIN_CONCAT_(_res_, __LINE__).status();           \
  lhs = std::move(TEXTJOIN_CONCAT_(_res_, __LINE__)).value()

#define TEXTJOIN_CONCAT_IMPL_(a, b) a##b
#define TEXTJOIN_CONCAT_(a, b) TEXTJOIN_CONCAT_IMPL_(a, b)

}  // namespace textjoin

#endif  // TEXTJOIN_COMMON_STATUS_H_
