#include "common/math_util.h"

#include <cmath>
#include <limits>

namespace textjoin {

int64_t CeilPages(double frac) {
  TEXTJOIN_CHECK_GE(frac, 0.0);
  double c = std::ceil(frac);
  if (c >= static_cast<double>(std::numeric_limits<int64_t>::max())) {
    return std::numeric_limits<int64_t>::max();
  }
  return static_cast<int64_t>(c);
}

}  // namespace textjoin
