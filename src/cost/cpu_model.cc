#include "cost/cpu_model.h"

#include <algorithm>
#include <cmath>

namespace textjoin {

namespace {

struct CpuDerived {
  double m;        // participating outer documents
  double N1, K1, T1;
  double K2, T2;
  double L1;       // average entry length on C1, in cells
  double common;   // expected common terms of a pair: q*K2*K1/T1
  double delta;
  double q;
};

CpuDerived Derive(const CostInputs& in) {
  CpuDerived d;
  d.N1 = static_cast<double>(in.c1.num_documents);
  d.K1 = in.c1.avg_terms_per_doc;
  d.T1 = std::max(1.0, static_cast<double>(in.c1.num_distinct_terms));
  d.K2 = in.c2.avg_terms_per_doc;
  d.T2 = std::max(1.0, static_cast<double>(in.c2.num_distinct_terms));
  d.m = in.participating_outer < 0
            ? static_cast<double>(in.c2.num_documents)
            : static_cast<double>(std::min<int64_t>(
                  in.participating_outer, in.c2.num_documents));
  d.L1 = d.K1 * d.N1 / d.T1;
  d.q = in.q;
  // Expected common terms of a pair. Under uniform term usage this is
  // q*K2*K1/T1; skewed document frequencies concentrate pairs on the
  // same head terms, scaling the expectation by ~sqrt(skew1*skew2)
  // (exact when both collections use the ranks in the same order).
  d.common = in.q * d.K2 * d.K1 / d.T1 *
             std::sqrt(in.c1.df_skew * in.c2.df_skew);
  d.delta = in.query.delta;
  return d;
}

}  // namespace

double ExpectedPruningRate(const CostInputs& in) {
  const double candidates =
      std::max(1.0, in.query.delta *
                        static_cast<double>(in.c1.num_documents));
  const double lambda = static_cast<double>(std::max<int64_t>(
      0, in.query.lambda));
  const double losing = std::max(0.0, 1.0 - lambda / candidates);
  return std::min(0.9, 0.5 * losing);
}

CpuEstimate HhnlCpuCost(const CostInputs& in) {
  CpuDerived d = Derive(in);
  CpuEstimate e;
  // Every pair walks both sorted cell lists: between max(K1,K2) and
  // K1+K2 steps; the expectation is K1 + K2 - common.
  double merge_per_pair = d.K1 + d.K2 - d.common;
  if (in.adaptive_merge) {
    // Skewed lengths switch to galloping: the shorter document's cells
    // each cost one probe step plus ~2*log2(ratio) search probes. Block
    // summaries (in.block_skip, one probe per 64-cell block) prune the
    // search range to roughly one block plus the summary walk, halving
    // the per-cell probe count.
    const double shorter = std::max(1.0, std::min(d.K1, d.K2));
    const double ratio = std::max(d.K1, d.K2) / shorter;
    if (ratio >= 16.0) {
      const double probes = in.block_skip ? std::log2(ratio) + 2.0
                                          : 2.0 * std::log2(ratio) + 2.0;
      merge_per_pair =
          std::min(merge_per_pair, shorter * probes + d.common);
    }
  }
  const double rate = std::clamp(in.pruning_rate, 0.0, 1.0);
  const double survivors = 1.0 - rate;
  e.cell_compares = d.m * d.N1 * survivors * merge_per_pair;
  e.accumulations = d.m * d.N1 * survivors * d.common;
  // Only non-zero surviving pairs reach the heap.
  e.heap_offers = d.m * d.N1 * d.delta * survivors;
  e.cells_decoded = 0;  // HHNL reads documents, not inverted cells
  if (rate > 0) {
    e.bound_checks = d.m * d.N1;  // one pre-check per pair
    e.pairs_pruned = d.m * d.N1 * rate;
  }
  return e;
}

CpuEstimate HvnlCpuCost(const CostInputs& in) {
  CpuDerived d = Derive(in);
  CpuEstimate e;
  // Each outer document touches q*K2 entries, whether they come from
  // cache or disk; the cell volume is the same per-pair accumulation
  // count as the other algorithms (m * N1 * common).
  e.accumulations = d.m * d.N1 * d.common;
  // Merge-walk visits: each outer document walks its q*K2 probed entries
  // end to end, L1 cells each.
  e.cell_compares = d.m * d.q * d.K2 * d.L1;
  // Only entries actually fetched from disk are decoded. Reuse the I/O
  // model's casework: fetched entries = needed when they all fit, else
  // the cache fills (X) and every later document reads Y fresh entries.
  const double X = std::max(0.0, HvnlCacheCapacity(in));
  const double needed =
      d.q * (d.m < static_cast<double>(in.c2.num_documents)
                 ? DistinctTermsAfter(d.m, d.K2, in.c2.num_distinct_terms)
                 : d.T2);
  double fetched;
  if (X >= needed) {
    fetched = needed;
  } else {
    auto qf = [&](double mm) {
      return d.q * DistinctTermsAfter(mm, d.K2, in.c2.num_distinct_terms);
    };
    double s = 1;
    while (qf(s) <= X && s < d.m) s += 1;
    const double fs = qf(s), fs1 = qf(s - 1);
    const double X1 = (fs - fs1) > 0 ? (X - fs1) / (fs - fs1) : 0.0;
    const double Y = std::max(qf(s + X1) - X, 0.0);
    fetched = X + std::max(d.m - s - X1 + 1.0, 0.0) * Y;
  }
  e.cells_decoded = fetched * d.L1;
  // Per outer document the accumulator holds ~delta*N1 non-zero scores.
  e.heap_offers = d.m * d.delta * d.N1;
  // Admission suppression: suppressed candidates never accumulate or reach
  // the heap; each probed entry pays one bound check per cell of the outer
  // document (the suffix build) plus one per admission decision.
  const double rate = std::clamp(in.pruning_rate, 0.0, 1.0);
  if (rate > 0) {
    e.accumulations *= 1.0 - rate;
    e.heap_offers *= 1.0 - rate;
    e.bound_checks = d.m * (d.K2 + d.q * d.K2);
    e.pairs_pruned = d.m * d.delta * d.N1 * rate;
    if (in.block_skip) {
      // Once admission closes, block-granular decode touches only blocks
      // holding live accumulator documents; the pruned fraction of each
      // entry's candidates is never decoded or visited by the walk.
      e.cells_decoded *= 1.0 - rate;
      e.cell_compares *= 1.0 - rate;
    }
  }
  return e;
}

CpuEstimate VvmCpuCost(const CostInputs& in) {
  CpuDerived d = Derive(in);
  CpuEstimate e;
  // Same pairwise accumulation volume as the other algorithms.
  e.accumulations = d.m * d.N1 * d.common;
  // Both inverted files are decoded once per pass.
  const double passes =
      static_cast<double>(std::max<int64_t>(1, VvmPasses(in)));
  const double cells1 = d.K1 * d.N1;
  const double cells2 =
      d.K2 * static_cast<double>(in.c2.num_documents);
  e.cells_decoded = passes * (cells1 + cells2);
  // Merge-walk visits: every pass checks all C2 cells against the pass
  // filter, and each participating outer cell walks its shared C1 entry
  // (L1 cells) in the one pass that owns it.
  const double walk_visits = d.m * d.q * d.K2 * d.L1;
  e.cell_compares = passes * cells2 + walk_visits;
  e.heap_offers = d.m * d.delta * d.N1;
  // Admission suppression: the decode volume is fixed by the scans, but
  // suppressed pairs skip their accumulations and heap offers at the cost
  // of one bound check per new-candidate decision.
  const double rate = std::clamp(in.pruning_rate, 0.0, 1.0);
  if (rate > 0) {
    e.accumulations *= 1.0 - rate;
    e.heap_offers *= 1.0 - rate;
    e.bound_checks = d.m * d.delta * d.N1;
    e.pairs_pruned = d.m * d.delta * d.N1 * rate;
    if (in.block_skip) {
      // Pass-slice skipping decodes (and pass-filters) each C2 block only
      // in the pass owning its document span, and closed outer documents
      // walk C1's entry block-wise: the pruned share of C1's cells stays
      // undecoded.
      e.cells_decoded = cells2 + passes * cells1 * (1.0 - rate);
      e.cell_compares = cells2 + walk_visits * (1.0 - rate);
    }
  }
  return e;
}

double CombinedCost(const AlgorithmCost& io, const CpuEstimate& cpu,
                    double ops_per_page_read) {
  if (!io.feasible) return io.seq;  // +inf
  return io.seq + cpu.Total() / ops_per_page_read;
}

}  // namespace textjoin
