#ifndef TEXTJOIN_COST_STATISTICS_H_
#define TEXTJOIN_COST_STATISTICS_H_

#include "cost/params.h"
#include "text/collection.h"

namespace textjoin {

// Extracts the cost model's inputs from a built collection's catalog.
CollectionStatistics StatisticsOf(const DocumentCollection& collection);

// Statistics of the sub-collection formed by the first `m` documents of a
// collection with statistics `stats`: N' = m, K' = K, and the expected
// distinct-term count T' = f(m) = T - (1 - K/T)^m * T. Used by simulation
// Group 4, where the outer collection is an ORIGINALLY small collection
// derived from a large one.
CollectionStatistics ReducedStatistics(const CollectionStatistics& stats,
                                       int64_t m);

// Statistics of the Group 5 transform: divide the number of documents by
// `factor` and multiply the terms per document by `factor`, keeping the
// collection size unchanged. The distinct-term count is kept (the same
// underlying vocabulary is spread over fewer, larger documents).
CollectionStatistics RescaledStatistics(const CollectionStatistics& stats,
                                        int64_t factor);

// Measured fraction of (outer, inner) document pairs with non-zero
// similarity — the paper's delta. O(T1 + T2 + matching postings) using the
// document-frequency catalogs; exact when computed on built collections.
double MeasuredDelta(const DocumentCollection& c1,
                     const DocumentCollection& c2);

// Measured probability that a distinct term of `from` also occurs in `to`
// — the paper's p/q, computed exactly from the catalogs.
double MeasuredTermOverlap(const DocumentCollection& from,
                           const DocumentCollection& to);

}  // namespace textjoin

#endif  // TEXTJOIN_COST_STATISTICS_H_
