#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "storage/disk_manager.h"
#include "storage/reliable_disk.h"

namespace textjoin {
namespace {

std::vector<uint8_t> MakePage(int64_t size, uint8_t fill) {
  return std::vector<uint8_t>(static_cast<size_t>(size), fill);
}

TEST(ReliableDiskTest, PassesThroughMetadataAndWrites) {
  SimulatedDisk base(64);
  ReliableDisk disk(&base);
  EXPECT_EQ(disk.page_size(), 64);
  FileId f = disk.CreateFile("data");
  auto page = MakePage(64, 5);
  ASSERT_TRUE(disk.AppendPage(f, page.data(), 64).ok());
  ASSERT_TRUE(disk.AppendPage(f, page.data(), 32).ok());  // partial page
  EXPECT_EQ(disk.FileSizeInPages(f).value(), 2);
  EXPECT_EQ(disk.FileName(f), "data");
  EXPECT_EQ(disk.FindFile("data").value(), f);
  EXPECT_EQ(disk.file_count(), 1);
  EXPECT_EQ(disk.checksummed_pages(), 2);

  std::vector<uint8_t> out(64);
  ASSERT_TRUE(disk.ReadPage(f, 0, out.data()).ok());
  EXPECT_EQ(out, page);
  // Fault-free reads record nothing in the retry ledger.
  EXPECT_FALSE(disk.retry_stats().any());
  // The merged stats view carries the base device's counters.
  EXPECT_EQ(disk.stats().page_writes, 2);
}

TEST(ReliableDiskTest, RetriesTransientErrorsWithBackoff) {
  SimulatedDisk base(64);
  ReliableDisk disk(&base);
  FileId f = disk.CreateFile("f");
  auto page = MakePage(64, 9);
  ASSERT_TRUE(disk.AppendPage(f, page.data(), 64).ok());

  FaultSchedule schedule;
  schedule.seed = 3;
  schedule.transient_rate = 0.4;
  base.set_fault_schedule(schedule);

  std::vector<uint8_t> out(64);
  int64_t successes = 0;
  for (int i = 0; i < 300; ++i) {
    if (disk.ReadPage(f, 0, out.data()).ok()) {
      ++successes;
      EXPECT_EQ(out, page);
    }
  }
  const RetryStats& rs = disk.retry_stats();
  EXPECT_GT(rs.transient_errors, 0);
  EXPECT_GT(rs.retries, 0);
  EXPECT_GT(rs.recovered_reads, 0);
  EXPECT_GT(rs.backoff_ms, 0.0);
  // At 40% per-attempt failure and 4 attempts almost everything recovers.
  EXPECT_GT(successes, 290);
  // The stats() view folds the ledger into IoStats.
  EXPECT_EQ(disk.stats().retry, rs);
}

TEST(ReliableDiskTest, MaxAttemptsOneDisablesRetry) {
  SimulatedDisk base(64);
  RetryPolicy policy;
  policy.max_attempts = 1;
  ReliableDisk disk(&base, policy);
  FileId f = disk.CreateFile("f");
  auto page = MakePage(64, 1);
  ASSERT_TRUE(disk.AppendPage(f, page.data(), 64).ok());

  base.InjectReadFault(0);
  std::vector<uint8_t> out(64);
  Status st = disk.ReadPage(f, 0, out.data());
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  EXPECT_EQ(disk.retry_stats().retries, 0);
  EXPECT_EQ(disk.retry_stats().exhausted_reads, 1);
  base.ClearReadFault();
}

TEST(ReliableDiskTest, GivesUpAfterMaxAttempts) {
  SimulatedDisk base(64);
  RetryPolicy policy;
  policy.max_attempts = 3;
  ReliableDisk disk(&base, policy);
  FileId f = disk.CreateFile("f");
  auto page = MakePage(64, 1);
  ASSERT_TRUE(disk.AppendPage(f, page.data(), 64).ok());

  base.InjectReadFault(0);  // sticky: every attempt fails
  std::vector<uint8_t> out(64);
  Status st = disk.ReadPage(f, 0, out.data());
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  EXPECT_NE(st.message().find("gave up after 3 attempts"), std::string::npos)
      << st.message();
  EXPECT_EQ(disk.retry_stats().retries, 2);
  EXPECT_EQ(disk.retry_stats().transient_errors, 3);
  EXPECT_EQ(disk.retry_stats().exhausted_reads, 1);
  base.ClearReadFault();
}

TEST(ReliableDiskTest, RetryBudgetBoundsRecoveryWork) {
  SimulatedDisk base(64);
  RetryPolicy policy;
  policy.max_attempts = 10;
  policy.retry_budget = 2;
  ReliableDisk disk(&base, policy);
  FileId f = disk.CreateFile("f");
  auto page = MakePage(64, 1);
  ASSERT_TRUE(disk.AppendPage(f, page.data(), 64).ok());

  base.InjectReadFault(0);
  std::vector<uint8_t> out(64);
  Status st = disk.ReadPage(f, 0, out.data());
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("retry budget"), std::string::npos)
      << st.message();
  EXPECT_EQ(disk.retry_stats().retries, 2);
  base.ClearReadFault();

  // The budget is per metering epoch: ResetStats() (one query) refills it.
  disk.ResetStats();
  base.InjectReadFault(1);
  ASSERT_TRUE(disk.ReadPage(f, 0, out.data()).ok());
  EXPECT_FALSE(disk.ReadPage(f, 0, out.data()).ok());  // budget spent again
  base.ClearReadFault();
}

TEST(ReliableDiskTest, RecoversFromTransferCorruption) {
  SimulatedDisk base(64);
  ReliableDisk disk(&base);
  FileId f = disk.CreateFile("f");
  auto page = MakePage(64, 0x42);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(disk.AppendPage(f, page.data(), 64).ok());
  }

  FaultSchedule schedule;
  schedule.seed = 9;
  schedule.corruption_rate = 0.5;  // flips a bit of the returned buffer
  base.set_fault_schedule(schedule);

  std::vector<uint8_t> out(64);
  for (int i = 0; i < 200; ++i) {
    Status st = disk.ReadPage(f, i % 4, out.data());
    if (st.ok()) {
      // Checksum verification guarantees a recovered read is bit-exact.
      EXPECT_EQ(out, page) << "corrupted data returned as OK";
    } else {
      EXPECT_EQ(st.code(), StatusCode::kDataLoss);
    }
  }
  EXPECT_GT(disk.retry_stats().checksum_failures, 0);
  EXPECT_GT(disk.retry_stats().recovered_reads, 0);
}

TEST(ReliableDiskTest, DetectsStoredCorruptionAsDataLoss) {
  SimulatedDisk base(64);
  ReliableDisk disk(&base);
  FileId f = disk.CreateFile("f");
  auto page = MakePage(64, 7);
  ASSERT_TRUE(disk.AppendPage(f, page.data(), 64).ok());

  // Corrupt the STORED page behind the decorator's back: the recorded
  // checksum can never match again, so retries are futile and the read
  // must fail with DATA_LOSS.
  page[10] ^= 0xFF;
  ASSERT_TRUE(base.WritePage(f, 0, page.data(), 64).ok());
  std::vector<uint8_t> out(64);
  Status st = disk.ReadPage(f, 0, out.data());
  EXPECT_EQ(st.code(), StatusCode::kDataLoss);
  EXPECT_NE(st.message().find("checksum mismatch"), std::string::npos);
  EXPECT_GT(disk.retry_stats().checksum_failures, 0);
  EXPECT_EQ(disk.retry_stats().recovered_reads, 0);
}

TEST(ReliableDiskTest, PermanentFailurePropagatesImmediately) {
  SimulatedDisk base(64);
  ReliableDisk disk(&base);
  FileId f = disk.CreateFile("f");
  auto page = MakePage(64, 7);
  ASSERT_TRUE(disk.AppendPage(f, page.data(), 64).ok());

  base.FailFilePermanently(f);
  std::vector<uint8_t> out(64);
  Status st = disk.ReadPage(f, 0, out.data());
  EXPECT_EQ(st.code(), StatusCode::kDataLoss);
  // No retries were burned on a dead file.
  EXPECT_EQ(disk.retry_stats().retries, 0);
  EXPECT_EQ(base.fault_counters().permanent, 1);
}

TEST(ReliableDiskTest, SealExistingFilesAdoptsPreexistingData) {
  SimulatedDisk base(64);
  FileId f = base.CreateFile("old");
  auto page = MakePage(64, 3);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(base.AppendPage(f, page.data(), 64).ok());
  }
  const IoStats before = base.stats();

  ReliableDisk disk(&base);
  EXPECT_EQ(disk.checksummed_pages(), 0);
  ASSERT_TRUE(disk.SealExistingFiles().ok());
  EXPECT_EQ(disk.checksummed_pages(), 5);
  // Sealing uses the unmetered maintenance path: no read counters moved.
  EXPECT_EQ(base.stats().sequential_reads + base.stats().random_reads,
            before.sequential_reads + before.random_reads);

  // Sealed pages are verified: transfer corruption is now caught.
  FaultSchedule schedule;
  schedule.seed = 5;
  schedule.corruption_rate = 1.0;
  base.set_fault_schedule(schedule);
  std::vector<uint8_t> out(64);
  Status st = disk.ReadPage(f, 0, out.data());
  EXPECT_FALSE(st.ok());
  EXPECT_GT(disk.retry_stats().checksum_failures, 0);
}

TEST(ReliableDiskTest, ChecksumVerificationCanBeDisabled) {
  SimulatedDisk base(64);
  RetryPolicy policy;
  policy.verify_checksums = false;
  ReliableDisk disk(&base, policy);
  FileId f = disk.CreateFile("f");
  auto page = MakePage(64, 7);
  ASSERT_TRUE(disk.AppendPage(f, page.data(), 64).ok());

  FaultSchedule schedule;
  schedule.seed = 5;
  schedule.corruption_rate = 1.0;
  base.set_fault_schedule(schedule);
  std::vector<uint8_t> out(64);
  // Without verification the corrupted transfer sails through as OK.
  ASSERT_TRUE(disk.ReadPage(f, 0, out.data()).ok());
  EXPECT_NE(out, page);
  EXPECT_EQ(disk.retry_stats().checksum_failures, 0);
}

TEST(RetryStatsTest, ArithmeticAndToString) {
  RetryStats a;
  a.transient_errors = 3;
  a.retries = 2;
  a.backoff_ms = 5.0;
  RetryStats b;
  b.transient_errors = 1;
  b.recovered_reads = 1;
  b.backoff_ms = 1.5;

  RetryStats sum = a;
  sum += b;
  EXPECT_EQ(sum.transient_errors, 4);
  EXPECT_EQ(sum.retries, 2);
  EXPECT_EQ(sum.recovered_reads, 1);
  EXPECT_DOUBLE_EQ(sum.backoff_ms, 6.5);
  EXPECT_EQ(sum - b, a);
  EXPECT_TRUE(a.any());
  EXPECT_FALSE(RetryStats().any());
  EXPECT_NE(a.ToString().find("transient=3"), std::string::npos);

  // IoStats::ToString stays byte-identical for fault-free runs and grows
  // a retry section only when recovery work happened.
  IoStats clean;
  EXPECT_EQ(clean.ToString().find("retry"), std::string::npos);
  IoStats dirty;
  dirty.retry = a;
  EXPECT_NE(dirty.ToString().find("retry"), std::string::npos);
}

}  // namespace
}  // namespace textjoin
