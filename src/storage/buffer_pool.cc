#include "storage/buffer_pool.h"

#include "common/logging.h"
#include "exec/governor.h"

namespace textjoin {

BufferPool::BufferPool(Disk* disk, int64_t capacity_pages)
    : disk_(disk), capacity_(capacity_pages) {
  TEXTJOIN_CHECK_GT(capacity_, 0);
}

Result<const uint8_t*> BufferPool::Pin(FileId file, PageNumber page) {
  // Polled on the hit path too: a pin that never touches the device must
  // still observe cancellation, or a fully cached loop would run forever.
  if (QueryGovernor* governor = disk_->governor(); governor != nullptr) {
    TEXTJOIN_RETURN_IF_ERROR(governor->PollIo());
  }
  Key key{file, page};
  auto it = frames_.find(key);
  if (it != frames_.end()) {
    ++hits_;
    Frame& f = it->second;
    if (f.in_lru) {
      lru_.erase(f.lru_pos);
      f.in_lru = false;
    }
    ++f.pins;
    return static_cast<const uint8_t*>(f.bytes.data());
  }
  ++misses_;
  // Read before evicting: a failed fetch must leave the pool exactly as it
  // was — no leaked frame, and no victim evicted for a page that never
  // arrived.
  Frame f;
  f.bytes.resize(static_cast<size_t>(disk_->page_size()));
  TEXTJOIN_RETURN_IF_ERROR(disk_->ReadPage(file, page, f.bytes.data()));
  if (static_cast<int64_t>(frames_.size()) >= capacity_) {
    TEXTJOIN_RETURN_IF_ERROR(EvictOne());
  }
  f.pins = 1;
  auto [pos, inserted] = frames_.emplace(key, std::move(f));
  TEXTJOIN_CHECK(inserted);
  return static_cast<const uint8_t*>(pos->second.bytes.data());
}

Status BufferPool::Unpin(FileId file, PageNumber page) {
  auto it = frames_.find(Key{file, page});
  if (it == frames_.end()) {
    return Status::NotFound("unpin of uncached page");
  }
  Frame& f = it->second;
  if (f.pins <= 0) {
    return Status::FailedPrecondition("unpin of unpinned page");
  }
  if (--f.pins == 0) {
    lru_.push_front(it->first);
    f.lru_pos = lru_.begin();
    f.in_lru = true;
  }
  return Status::OK();
}

Status BufferPool::EvictOne() {
  if (lru_.empty()) {
    return Status::ResourceExhausted("all buffer frames are pinned");
  }
  Key victim = lru_.back();
  lru_.pop_back();
  frames_.erase(victim);
  return Status::OK();
}

Status BufferPool::FlushAll() {
  for (const auto& [key, frame] : frames_) {
    if (frame.pins > 0) {
      return Status::FailedPrecondition("page still pinned during FlushAll");
    }
  }
  frames_.clear();
  lru_.clear();
  return Status::OK();
}

}  // namespace textjoin
