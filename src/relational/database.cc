#include "relational/database.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "catalog/catalog.h"
#include "common/crc32.h"
#include "dynamic/delta_join.h"
#include "relational/sql_parser.h"
#include "storage/coding.h"
#include "storage/page_stream.h"
#include "storage/snapshot.h"

namespace textjoin {

namespace {

constexpr const char* kManifestFile = "__db.manifest";
constexpr const char* kVocabularyFile = "__db.vocab";
constexpr const char* kDynamicFile = "__db.dynamic";
constexpr uint32_t kManifestMagic = 0x544A444Du;  // "TJDM"

std::string CatalogName(const std::string& object_name, bool is_index) {
  return "__cat." + object_name + (is_index ? ".idx" : ".col");
}

}  // namespace

Database::Database(const DatabaseOptions& options)
    : options_(options),
      sys_{10000, options.page_size, 5.0},
      admission_(options.admission) {
  InstallDisk(std::make_unique<SimulatedDisk>(options.page_size));
}

void Database::InstallDisk(std::unique_ptr<SimulatedDisk> disk) {
  disk_ = std::move(disk);
  if (options_.reliable_storage) {
    reliable_ = std::make_unique<ReliableDisk>(disk_.get(), options_.retry);
    active_disk_ = reliable_.get();
  } else {
    reliable_.reset();
    active_disk_ = disk_.get();
  }
}

Result<const DocumentCollection*> Database::AddCollectionFromText(
    const std::string& name, const std::vector<std::string>& documents) {
  CollectionBuilder builder(active_disk_, name);
  for (const std::string& text : documents) {
    TEXTJOIN_ASSIGN_OR_RETURN(Document doc,
                              tokenizer_.MakeDocument(text, &vocabulary_));
    TEXTJOIN_RETURN_IF_ERROR(builder.AddDocument(doc).status());
  }
  TEXTJOIN_ASSIGN_OR_RETURN(DocumentCollection collection, builder.Finish());
  return AddCollection(name, std::move(collection));
}

Result<const DocumentCollection*> Database::AddCollection(
    const std::string& name, DocumentCollection collection) {
  if (collections_.count(name) > 0 || dynamic_.count(name) > 0) {
    return Status::AlreadyExists("collection '" + name + "' exists");
  }
  if (collection.disk() != active_disk_) {
    return Status::InvalidArgument(
        "collection lives on a different disk");
  }
  auto owned = std::make_unique<DocumentCollection>(std::move(collection));
  const DocumentCollection* ptr = owned.get();
  collections_.emplace(name, std::move(owned));
  epochs_[name] = 1;
  return ptr;
}

int64_t Database::CollectionEpoch(const std::string& name) const {
  if (auto it = dynamic_.find(name); it != dynamic_.end()) {
    return it->second->epoch();
  }
  if (collections_.count(name) == 0) return -1;
  auto it = epochs_.find(name);
  return it == epochs_.end() ? 1 : it->second;
}

Status Database::BumpCollectionEpoch(const std::string& name) {
  if (collections_.count(name) == 0) {
    return Status::NotFound("no collection '" + name + "'");
  }
  ++epochs_[name];
  result_cache_.EraseCollection(name);
  return Status::OK();
}

Result<std::unique_ptr<QueryScheduler>> Database::NewScheduler(
    const ServeOptions& options) {
  auto scheduler =
      std::make_unique<QueryScheduler>(active_disk_, &vocabulary_, options);
  for (const std::string& name : collection_names()) {
    const InvertedFile* idx = index(name);
    if (idx == nullptr) continue;  // serving needs the inverted file
    TEXTJOIN_RETURN_IF_ERROR(
        scheduler->AddCollection(name, collection(name), idx));
  }
  // Dynamic collections serve too: queries snapshot their live state at
  // admission and SubmitWrite accepts mutations against them.
  for (const std::string& name : dynamic_names()) {
    TEXTJOIN_RETURN_IF_ERROR(
        scheduler->AddDynamicCollection(name, dynamic_collection(name)));
  }
  return scheduler;
}

Result<const InvertedFile*> Database::BuildIndex(
    const std::string& collection_name, PostingCompression compression) {
  auto it = collections_.find(collection_name);
  if (it == collections_.end()) {
    return Status::NotFound("no collection '" + collection_name + "'");
  }
  if (indexes_.count(collection_name) > 0) {
    return Status::AlreadyExists("index on '" + collection_name +
                                 "' exists");
  }
  TEXTJOIN_ASSIGN_OR_RETURN(
      InvertedFile inv,
      InvertedFile::Build(active_disk_, collection_name + ".inv",
                          *it->second,
                          InvertedFile::BuildOptions{compression}));
  auto owned = std::make_unique<InvertedFile>(std::move(inv));
  const InvertedFile* ptr = owned.get();
  indexes_.emplace(collection_name, std::move(owned));
  return ptr;
}

const DocumentCollection* Database::collection(const std::string& name) const {
  auto it = collections_.find(name);
  return it == collections_.end() ? nullptr : it->second.get();
}

const InvertedFile* Database::index(const std::string& name) const {
  auto it = indexes_.find(name);
  return it == indexes_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Database::collection_names() const {
  std::vector<std::string> names;
  names.reserve(collections_.size());
  for (const auto& [name, col] : collections_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

Result<DynamicCollection*> Database::AddDynamicCollectionFromText(
    const std::string& name, const std::vector<std::string>& documents) {
  if (collections_.count(name) > 0 || dynamic_.count(name) > 0) {
    return Status::AlreadyExists("collection '" + name + "' exists");
  }
  std::vector<Document> docs;
  docs.reserve(documents.size());
  for (const std::string& text : documents) {
    TEXTJOIN_ASSIGN_OR_RETURN(Document doc,
                              tokenizer_.MakeDocument(text, &vocabulary_));
    docs.push_back(std::move(doc));
  }
  TEXTJOIN_ASSIGN_OR_RETURN(
      std::unique_ptr<DynamicCollection> dc,
      DynamicCollection::Create(active_disk_, name, docs));
  DynamicCollection* ptr = dc.get();
  dynamic_.emplace(name, std::move(dc));
  return ptr;
}

Result<DocKey> Database::InsertDocument(const std::string& name,
                                        const std::string& text) {
  auto it = dynamic_.find(name);
  if (it == dynamic_.end()) {
    return Status::NotFound("no dynamic collection '" + name + "'");
  }
  TEXTJOIN_ASSIGN_OR_RETURN(Document doc,
                            tokenizer_.MakeDocument(text, &vocabulary_));
  TEXTJOIN_ASSIGN_OR_RETURN(DocKey key, it->second->Insert(doc));
  // The mutation bumped the collection's epoch: cached joins over the old
  // contents are unreachable by key and eagerly dropped.
  result_cache_.EraseCollection(name);
  return key;
}

Status Database::DeleteDocument(const std::string& name, DocKey key) {
  auto it = dynamic_.find(name);
  if (it == dynamic_.end()) {
    return Status::NotFound("no dynamic collection '" + name + "'");
  }
  TEXTJOIN_RETURN_IF_ERROR(it->second->Delete(key));
  result_cache_.EraseCollection(name);
  return Status::OK();
}

Status Database::CompactCollection(const std::string& name) {
  auto it = dynamic_.find(name);
  if (it == dynamic_.end()) {
    return Status::NotFound("no dynamic collection '" + name + "'");
  }
  TEXTJOIN_RETURN_IF_ERROR(it->second->Compact());
  result_cache_.EraseCollection(name);
  return Status::OK();
}

DynamicCollection* Database::dynamic_collection(const std::string& name) {
  auto it = dynamic_.find(name);
  return it == dynamic_.end() ? nullptr : it->second.get();
}

const DynamicCollection* Database::dynamic_collection(
    const std::string& name) const {
  auto it = dynamic_.find(name);
  return it == dynamic_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Database::dynamic_names() const {
  std::vector<std::string> names;
  names.reserve(dynamic_.size());
  for (const auto& [name, dc] : dynamic_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

Result<Database::GovernedRun> Database::BeginGoverned(const JoinContext& ctx,
                                                      const JoinSpec& spec) {
  GovernedRun run;
  const AdmissionOptions& adm = options_.admission;

  // Per-query limits win over session knobs, which win over the
  // database-wide defaults.
  double deadline_ms = spec.deadline_ms > 0 ? spec.deadline_ms
                       : session_deadline_ms_ > 0
                           ? session_deadline_ms_
                           : adm.default_deadline_ms;
  int64_t memory_budget = spec.memory_budget_pages > 0
                              ? spec.memory_budget_pages
                              : session_memory_budget_pages_;

  run.admission_active = adm.max_concurrent > 0 ||
                         adm.memory_budget_pages > 0 || adm.cost_unit_ms > 0;
  if (run.admission_active) {
    // The planner's cost estimate is the predicted runtime/memory claim
    // the controller charges against the system's budgets.
    double predicted_pages = 0;
    JoinPlanner planner;
    Result<PlanChoice> plan = planner.Plan(ctx, spec);
    if (plan.ok()) {
      predicted_pages = plan->costs.of(plan->algorithm).seq;
    }
    TEXTJOIN_ASSIGN_OR_RETURN(
        run.grant,
        admission_.Submit(predicted_pages, ctx.sys.buffer_pages, deadline_ms));
    if (run.grant.outcome == AdmissionOutcome::kQueued) {
      TEXTJOIN_ASSIGN_OR_RETURN(run.grant, admission_.Await(run.grant.ticket));
    }
    if (adm.memory_budget_pages > 0 &&
        run.grant.memory_granted_pages > 0 &&
        run.grant.memory_granted_pages < ctx.sys.buffer_pages) {
      // Partial memory grant: the governor budget makes the join degrade
      // to the granted pages instead of failing.
      memory_budget = memory_budget > 0
                          ? std::min(memory_budget,
                                     run.grant.memory_granted_pages)
                          : run.grant.memory_granted_pages;
    }
  }

  // No governor when nothing governs: ungoverned runs keep their exact
  // pre-governance behaviour (and EXPLAIN ANALYZE output).
  if (deadline_ms > 0 || memory_budget > 0 || run.admission_active) {
    run.governor = std::make_unique<QueryGovernor>(
        GovernorLimits{deadline_ms, memory_budget});
  }
  return run;
}

void Database::EndGoverned(GovernedRun* run) {
  if (run->admission_active && run->grant.ticket >= 0) {
    admission_.Release(
        run->grant.ticket,
        run->governor != nullptr ? run->governor->ElapsedMs() : 0);
  }
}

Result<JoinResult> Database::Join(const std::string& inner_name,
                                  const std::string& outer_name,
                                  const JoinSpec& spec, PlanChoice* chosen) {
  if (dynamic_.count(inner_name) > 0 || dynamic_.count(outer_name) > 0) {
    return JoinDynamic(inner_name, outer_name, spec, chosen);
  }
  const DocumentCollection* inner = collection(inner_name);
  const DocumentCollection* outer = collection(outer_name);
  if (inner == nullptr || outer == nullptr) {
    return Status::NotFound("unknown collection in join");
  }

  // Result cache: a repeat of the same logical join under the same
  // collection epochs skips admission, planning and execution entirely.
  std::string cache_key;
  if (result_cache_.enabled()) {
    cache_key = JoinCacheKey(inner_name, CollectionEpoch(inner_name),
                             outer_name, CollectionEpoch(outer_name), spec);
    if (auto cached = result_cache_.Lookup(cache_key);
        cached.has_value() && cached->has_plan) {
      if (chosen != nullptr) *chosen = cached->plan;
      return cached->rows;
    }
  }

  TEXTJOIN_ASSIGN_OR_RETURN(
      SimilarityContext simctx,
      SimilarityContext::Create(*inner, *outer, spec.similarity));
  JoinContext ctx;
  ctx.inner = inner;
  ctx.outer = outer;
  ctx.inner_index = index(inner_name);
  ctx.outer_index = index(outer_name);
  ctx.similarity = &simctx;
  ctx.sys = sys_;
  TEXTJOIN_ASSIGN_OR_RETURN(GovernedRun run, BeginGoverned(ctx, spec));
  ScopedDiskGovernor disk_governor(active_disk_, run.governor.get());
  ctx.governor = run.governor.get();
  JoinPlanner planner;
  PlanChoice plan;
  Result<JoinResult> result = planner.Execute(ctx, spec, &plan);
  EndGoverned(&run);
  if (result.ok()) {
    if (chosen != nullptr) *chosen = plan;
    if (result_cache_.enabled()) {
      // Only a fully completed join is cached — a cancelled or shed run
      // returned above with its error.
      CachedResult value;
      value.rows = result.value();
      value.plan = std::move(plan);
      value.has_plan = true;
      result_cache_.Insert(cache_key, std::move(value),
                           {inner_name, outer_name});
    }
  }
  return result;
}

Result<JoinResult> Database::JoinDynamic(const std::string& inner_name,
                                         const std::string& outer_name,
                                         const JoinSpec& spec,
                                         PlanChoice* chosen) {
  auto resolve = [this](const std::string& name,
                        DynamicJoinSide* side) -> Status {
    if (auto it = dynamic_.find(name); it != dynamic_.end()) {
      *side = MakeJoinSide(*it->second);
      return Status::OK();
    }
    const DocumentCollection* col = collection(name);
    if (col == nullptr) {
      return Status::NotFound("unknown collection in join");
    }
    *side = MakeJoinSide(*col, index(name));
    return Status::OK();
  };
  DynamicJoinSide inner;
  DynamicJoinSide outer;
  TEXTJOIN_RETURN_IF_ERROR(resolve(inner_name, &inner));
  TEXTJOIN_RETURN_IF_ERROR(resolve(outer_name, &outer));

  // Cache keys include epochs; a dynamic collection's epoch moves with
  // every mutation, so hits are only possible between unchanged contents.
  std::string cache_key;
  if (result_cache_.enabled()) {
    cache_key = JoinCacheKey(inner_name, CollectionEpoch(inner_name),
                             outer_name, CollectionEpoch(outer_name), spec);
    if (auto cached = result_cache_.Lookup(cache_key);
        cached.has_value() && cached->has_plan) {
      if (chosen != nullptr) *chosen = cached->plan;
      return cached->rows;
    }
  }

  // Admission sees the base collections: the delta stays small between
  // compactions, so the base dominates the predicted cost.
  TEXTJOIN_ASSIGN_OR_RETURN(
      SimilarityContext simctx,
      SimilarityContext::Create(*inner.base, *outer.base, spec.similarity));
  JoinContext ctx;
  ctx.inner = inner.base;
  ctx.outer = outer.base;
  ctx.inner_index = inner.index;
  ctx.outer_index = outer.index;
  ctx.similarity = &simctx;
  ctx.sys = sys_;
  TEXTJOIN_ASSIGN_OR_RETURN(GovernedRun run, BeginGoverned(ctx, spec));
  ScopedDiskGovernor disk_governor(active_disk_, run.governor.get());
  PlanChoice plan;
  Result<JoinResult> result =
      DynamicJoin(inner, outer, spec, sys_, run.governor.get(), &plan);
  EndGoverned(&run);
  if (result.ok()) {
    if (chosen != nullptr) *chosen = plan;
    if (result_cache_.enabled()) {
      CachedResult value;
      value.rows = result.value();
      value.plan = std::move(plan);
      value.has_plan = true;
      result_cache_.Insert(cache_key, std::move(value),
                           {inner_name, outer_name});
    }
  }
  return result;
}

Result<AnalyzedJoin> Database::JoinAnalyze(const std::string& inner_name,
                                           const std::string& outer_name,
                                           const JoinSpec& spec,
                                           const ExplainOptions& options) {
  const DocumentCollection* inner = collection(inner_name);
  const DocumentCollection* outer = collection(outer_name);
  if (inner == nullptr || outer == nullptr) {
    return Status::NotFound("unknown collection in join");
  }

  std::string cache_key;
  if (result_cache_.enabled()) {
    cache_key = JoinCacheKey(inner_name, CollectionEpoch(inner_name),
                             outer_name, CollectionEpoch(outer_name), spec);
    if (auto cached = result_cache_.Lookup(cache_key);
        cached.has_value() && cached->has_plan) {
      AnalyzedJoin analyzed;
      analyzed.result = cached->rows;
      analyzed.plan = cached->plan;
      ServingStats& serving = analyzed.stats.serving;
      serving.active = true;
      serving.cache_hit = true;
      serving.cache_hits = result_cache_.stats().hits;
      serving.cache_misses = result_cache_.stats().misses;
      analyzed.report = RenderExplainAnalyze(analyzed.plan.ToExplainPlan(),
                                             analyzed.stats, options);
      return analyzed;
    }
  }

  TEXTJOIN_ASSIGN_OR_RETURN(
      SimilarityContext simctx,
      SimilarityContext::Create(*inner, *outer, spec.similarity));
  JoinContext ctx;
  ctx.inner = inner;
  ctx.outer = outer;
  ctx.inner_index = index(inner_name);
  ctx.outer_index = index(outer_name);
  ctx.similarity = &simctx;
  ctx.sys = sys_;
  TEXTJOIN_ASSIGN_OR_RETURN(GovernedRun run, BeginGoverned(ctx, spec));
  ScopedDiskGovernor disk_governor(active_disk_, run.governor.get());
  ctx.governor = run.governor.get();
  JoinPlanner planner;
  Result<AnalyzedJoin> analyzed = planner.ExecuteAnalyze(ctx, spec, options);
  EndGoverned(&run);
  if (analyzed.ok() && result_cache_.enabled()) {
    CachedResult value;
    value.rows = analyzed->result;
    value.plan = analyzed->plan;
    value.has_plan = true;
    result_cache_.Insert(cache_key, std::move(value),
                         {inner_name, outer_name});
    ServingStats& serving = analyzed->stats.serving;
    serving.active = true;
    serving.cache_hit = false;
    serving.cache_hits = result_cache_.stats().hits;
    serving.cache_misses = result_cache_.stats().misses;
    analyzed->report = RenderExplainAnalyze(analyzed->plan.ToExplainPlan(),
                                            analyzed->stats, options);
  }
  if (analyzed.ok() && run.admission_active) {
    // Fold the admission outcome into the governance block and re-render
    // (rendering is pure, so this just replaces the report text).
    GovernanceStats& g = analyzed->stats.governance;
    g.admission = AdmissionOutcomeName(run.grant.outcome);
    g.queue_wait_ms = run.grant.queue_wait_ms;
    g.memory_granted_pages = run.grant.memory_granted_pages;
    analyzed->report = RenderExplainAnalyze(analyzed->plan.ToExplainPlan(),
                                            analyzed->stats, options);
  }
  return analyzed;
}

Status Database::RegisterTable(const Table* table) {
  if (table == nullptr) {
    return Status::InvalidArgument("null table");
  }
  for (const Table* t : tables_) {
    if (t == table || t->name() == table->name()) {
      return Status::AlreadyExists("table '" + table->name() +
                                   "' is already registered");
    }
  }
  tables_.push_back(table);
  return Status::OK();
}

namespace {

// Case-insensitive keyword match at `pos`, followed by a non-identifier
// character (or end of string).
bool KeywordAt(const std::string& s, size_t pos, const char* kw) {
  size_t n = std::strlen(kw);
  if (pos + n > s.size()) return false;
  for (size_t i = 0; i < n; ++i) {
    if (std::toupper(static_cast<unsigned char>(s[pos + i])) != kw[i]) {
      return false;
    }
  }
  return pos + n == s.size() ||
         !(std::isalnum(static_cast<unsigned char>(s[pos + n])) ||
           s[pos + n] == '_');
}

}  // namespace

Result<bool> Database::TryExecuteSet(const std::string& sql, SqlOutput* out) {
  size_t pos = sql.find_first_not_of(" \t\r\n");
  if (pos == std::string::npos || !KeywordAt(sql, pos, "SET")) return false;
  pos += 3;

  // SET <name> = <value>  (a trailing ';' is tolerated).
  size_t name_begin = sql.find_first_not_of(" \t\r\n", pos);
  if (name_begin == std::string::npos) {
    return Status::InvalidArgument("SET: missing knob name");
  }
  size_t name_end = name_begin;
  while (name_end < sql.size() &&
         (std::isalnum(static_cast<unsigned char>(sql[name_end])) ||
          sql[name_end] == '_')) {
    ++name_end;
  }
  std::string name = sql.substr(name_begin, name_end - name_begin);
  size_t eq = sql.find_first_not_of(" \t\r\n", name_end);
  if (eq == std::string::npos || sql[eq] != '=') {
    return Status::InvalidArgument("SET " + name + ": expected '='");
  }
  std::string value_str = sql.substr(eq + 1);
  while (!value_str.empty() &&
         (value_str.back() == ';' || std::isspace(static_cast<unsigned char>(
                                         value_str.back())))) {
    value_str.pop_back();
  }
  size_t value_begin = value_str.find_first_not_of(" \t\r\n");
  value_str.erase(0, value_begin == std::string::npos ? value_str.size()
                                                      : value_begin);
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(value_str.c_str(), &end);
  if (value_str.empty() || end != value_str.c_str() + value_str.size() ||
      errno == ERANGE || value < 0) {
    return Status::InvalidArgument("SET " + name + ": '" + value_str +
                                   "' is not a non-negative number");
  }

  if (name == "deadline_ms") {
    session_deadline_ms_ = value;
  } else if (name == "memory_budget_pages") {
    session_memory_budget_pages_ = static_cast<int64_t>(value);
  } else if (name == "result_cache_entries") {
    result_cache_.set_capacity(static_cast<int64_t>(value));
  } else {
    return Status::InvalidArgument(
        "SET: unknown knob '" + name +
        "' (supported: deadline_ms, memory_budget_pages, "
        "result_cache_entries)");
  }
  out->rows.push_back("SET " + name + " = " + value_str);
  return true;
}

Result<Database::SqlOutput> Database::ExecuteSql(const std::string& sql) {
  {
    SqlOutput set_out;
    TEXTJOIN_ASSIGN_OR_RETURN(bool was_set, TryExecuteSet(sql, &set_out));
    if (was_set) return set_out;
  }
  SqlParser parser(tables_);
  TEXTJOIN_ASSIGN_OR_RETURN(BoundQuery bound, parser.Parse(sql));

  // The registered collection name a text column is attached to.
  auto name_of = [&](const Table* table,
                     const std::string& column) -> std::string {
    int64_t c = table->ColumnIndex(column);
    if (c < 0) return std::string();
    const DocumentCollection* col = table->CollectionOf(c);
    for (const auto& [name, owned] : collections_) {
      if (owned.get() == col) return name;
    }
    return std::string();
  };

  // The inverted file (if any) registered for the collection a text
  // column is attached to.
  auto index_of = [&](const Table* table,
                      const std::string& column) -> const InvertedFile* {
    std::string name = name_of(table, column);
    if (name.empty()) return nullptr;
    auto it = indexes_.find(name);
    return it == indexes_.end() ? nullptr : it->second.get();
  };

  // Session lifecycle knobs apply to every SIMILAR_TO query; the executor
  // builds the governor from these fields.
  TextJoinQuery query = bound.query();
  query.deadline_ms = session_deadline_ms_ > 0
                          ? session_deadline_ms_
                          : options_.admission.default_deadline_ms;
  query.memory_budget_pages = session_memory_budget_pages_;

  const bool admission_active = options_.admission.max_concurrent > 0 ||
                                options_.admission.memory_budget_pages > 0 ||
                                options_.admission.cost_unit_ms > 0;
  AdmissionGrant grant;
  if (admission_active) {
    TEXTJOIN_ASSIGN_OR_RETURN(
        grant, admission_.Submit(/*predicted_cost_pages=*/0,
                                 sys_.buffer_pages, query.deadline_ms));
    if (grant.outcome == AdmissionOutcome::kQueued) {
      TEXTJOIN_ASSIGN_OR_RETURN(grant, admission_.Await(grant.ticket));
    }
    if (options_.admission.memory_budget_pages > 0 &&
        grant.memory_granted_pages > 0 &&
        grant.memory_granted_pages < sys_.buffer_pages) {
      query.memory_budget_pages =
          query.memory_budget_pages > 0
              ? std::min(query.memory_budget_pages,
                         grant.memory_granted_pages)
              : grant.memory_granted_pages;
    }
  }

  // Attach the result cache when it is enabled and both sides resolve to
  // registered collections (the hook keys on their names + epochs).
  QueryCacheHook hook;
  const QueryCacheHook* hook_ptr = nullptr;
  if (result_cache_.enabled()) {
    hook.inner_name = name_of(query.inner_table, query.inner_text_column);
    hook.outer_name = name_of(query.outer_table, query.outer_text_column);
    if (!hook.inner_name.empty() && !hook.outer_name.empty()) {
      hook.cache = &result_cache_;
      hook.inner_epoch = CollectionEpoch(hook.inner_name);
      hook.outer_epoch = CollectionEpoch(hook.outer_name);
      hook_ptr = &hook;
    }
  }

  TextJoinQueryExecutor executor(sys_);
  Result<QueryResult> run =
      executor.Run(query, index_of(query.inner_table, query.inner_text_column),
                   index_of(query.outer_table, query.outer_text_column),
                   hook_ptr);
  if (admission_active) admission_.Release(grant.ticket);
  TEXTJOIN_RETURN_IF_ERROR(run.status());
  QueryResult result = std::move(*run);
  if (admission_active && result.stats.governance.active) {
    GovernanceStats& g = result.stats.governance;
    g.admission = AdmissionOutcomeName(grant.outcome);
    g.queue_wait_ms = grant.queue_wait_ms;
    g.memory_granted_pages = grant.memory_granted_pages;
    if (query.explain_analyze) {
      result.explain = RenderExplainAnalyze(result.plan.ToExplainPlan(),
                                            result.stats,
                                            query.explain_options);
    }
  }
  SqlOutput out;
  out.rows.reserve(result.rows.size());
  for (const QueryResultRow& row : result.rows) {
    out.rows.push_back(bound.FormatRow(row));
  }
  out.result = std::move(result);
  return out;
}

Status Database::Save(const std::string& path) {
  if (saved_) {
    return Status::FailedPrecondition(
        "Save may be called once per Database instance");
  }
  saved_ = true;

  // Vocabulary: term strings in id order, CRC-protected.
  {
    std::vector<uint8_t> payload;
    PutFixed64(&payload, static_cast<uint64_t>(vocabulary_.size()));
    for (int64_t id = 0; id < vocabulary_.size(); ++id) {
      TEXTJOIN_ASSIGN_OR_RETURN(std::string term,
                                vocabulary_.TermOf(static_cast<TermId>(id)));
      PutFixed32(&payload, static_cast<uint32_t>(term.size()));
      payload.insert(payload.end(), term.begin(), term.end());
    }
    FileId file = active_disk_->CreateFile(kVocabularyFile);
    PageStreamWriter writer(active_disk_, file);
    std::vector<uint8_t> header;
    PutFixed32(&header, kManifestMagic);
    PutFixed64(&header, static_cast<uint64_t>(payload.size()));
    PutFixed32(&header, Crc32(payload.data(), payload.size()));
    writer.Append(header);
    writer.Append(payload);
    TEXTJOIN_RETURN_IF_ERROR(writer.Finish());
  }

  // Catalogs for every registered object.
  std::vector<uint8_t> manifest;
  PutFixed64(&manifest, static_cast<uint64_t>(collections_.size()));
  for (const std::string& name : collection_names()) {
    TEXTJOIN_RETURN_IF_ERROR(SaveCollectionCatalog(
        *collections_.at(name), CatalogName(name, /*is_index=*/false)));
    PutFixed32(&manifest, static_cast<uint32_t>(name.size()));
    manifest.insert(manifest.end(), name.begin(), name.end());
    uint8_t has_index = indexes_.count(name) > 0 ? 1 : 0;
    manifest.push_back(has_index);
    if (has_index) {
      TEXTJOIN_RETURN_IF_ERROR(SaveInvertedFileCatalog(
          *indexes_.at(name), CatalogName(name, /*is_index=*/true)));
    }
  }
  {
    FileId file = active_disk_->CreateFile(kManifestFile);
    PageStreamWriter writer(active_disk_, file);
    std::vector<uint8_t> header;
    PutFixed32(&header, kManifestMagic);
    PutFixed64(&header, static_cast<uint64_t>(manifest.size()));
    PutFixed32(&header, Crc32(manifest.data(), manifest.size()));
    writer.Append(header);
    writer.Append(manifest);
    TEXTJOIN_RETURN_IF_ERROR(writer.Finish());
  }

  // Dynamic collections: their generations, manifests and WALs are disk
  // files already, so the snapshot carries them verbatim (including any
  // un-compacted WAL tail — Open replays it). Only the names need
  // recording.
  {
    std::vector<uint8_t> payload;
    const std::vector<std::string> names = dynamic_names();
    PutFixed64(&payload, static_cast<uint64_t>(names.size()));
    for (const std::string& name : names) {
      PutFixed32(&payload, static_cast<uint32_t>(name.size()));
      payload.insert(payload.end(), name.begin(), name.end());
    }
    FileId file = active_disk_->CreateFile(kDynamicFile);
    PageStreamWriter writer(active_disk_, file);
    std::vector<uint8_t> header;
    PutFixed32(&header, kManifestMagic);
    PutFixed64(&header, static_cast<uint64_t>(payload.size()));
    PutFixed32(&header, Crc32(payload.data(), payload.size()));
    writer.Append(header);
    writer.Append(payload);
    TEXTJOIN_RETURN_IF_ERROR(writer.Finish());
  }
  return SaveDiskSnapshot(*disk_, path);
}

namespace {

// Reads one "TJDM" record written by Save.
Result<std::vector<uint8_t>> ReadDbRecord(Disk* disk,
                                          const std::string& file_name) {
  TEXTJOIN_ASSIGN_OR_RETURN(FileId file, disk->FindFile(file_name));
  PageStreamReader reader(disk, file);
  std::vector<uint8_t> header;
  TEXTJOIN_RETURN_IF_ERROR(reader.Read(0, 16, &header));
  if (GetFixed32(header.data()) != kManifestMagic) {
    return Status::InvalidArgument(file_name + " has the wrong magic");
  }
  const uint64_t len = GetFixed64(header.data() + 4);
  const uint32_t crc = GetFixed32(header.data() + 12);
  std::vector<uint8_t> payload;
  TEXTJOIN_RETURN_IF_ERROR(
      reader.Read(16, static_cast<int64_t>(len), &payload));
  if (Crc32(payload.data(), payload.size()) != crc) {
    return Status::Internal(file_name + " failed its checksum");
  }
  return payload;
}

}  // namespace

Result<std::unique_ptr<Database>> Database::Open(const std::string& path) {
  return Open(path, DatabaseOptions());
}

Result<std::unique_ptr<Database>> Database::Open(
    const std::string& path, const DatabaseOptions& options) {
  TEXTJOIN_ASSIGN_OR_RETURN(std::unique_ptr<SimulatedDisk> disk,
                            LoadDiskSnapshot(path));
  DatabaseOptions opts = options;
  opts.page_size = disk->page_size();
  auto db = std::make_unique<Database>(opts);
  db->InstallDisk(std::move(disk));
  if (db->reliable_ != nullptr) {
    // Adopt the snapshot's pages so every subsequent read is verified.
    TEXTJOIN_RETURN_IF_ERROR(db->reliable_->SealExistingFiles());
  }
  db->sys_ = SystemParams{10000, db->disk_->page_size(), 5.0};
  db->saved_ = true;  // the snapshot already contains catalogs

  // Vocabulary.
  {
    TEXTJOIN_ASSIGN_OR_RETURN(
        std::vector<uint8_t> payload,
        ReadDbRecord(db->active_disk_, kVocabularyFile));
    if (payload.size() < 8) {
      return Status::InvalidArgument("truncated vocabulary record");
    }
    const uint8_t* p = payload.data();
    const uint8_t* end = payload.data() + payload.size();
    uint64_t count = GetFixed64(p);
    p += 8;
    for (uint64_t i = 0; i < count; ++i) {
      if (p + 4 > end) return Status::InvalidArgument("bad vocabulary");
      uint32_t len = GetFixed32(p);
      p += 4;
      if (p + len > end) return Status::InvalidArgument("bad vocabulary");
      TEXTJOIN_RETURN_IF_ERROR(
          db->vocabulary_
              .AddOrGet(std::string_view(
                  reinterpret_cast<const char*>(p), len))
              .status());
      p += len;
    }
  }

  // Manifest -> collections and indexes.
  TEXTJOIN_ASSIGN_OR_RETURN(std::vector<uint8_t> manifest,
                            ReadDbRecord(db->active_disk_, kManifestFile));
  const uint8_t* p = manifest.data();
  const uint8_t* end = manifest.data() + manifest.size();
  if (p + 8 > end) return Status::InvalidArgument("truncated manifest");
  uint64_t count = GetFixed64(p);
  p += 8;
  for (uint64_t i = 0; i < count; ++i) {
    if (p + 4 > end) return Status::InvalidArgument("truncated manifest");
    uint32_t len = GetFixed32(p);
    p += 4;
    if (p + len + 1 > end) return Status::InvalidArgument("bad manifest");
    std::string name(reinterpret_cast<const char*>(p), len);
    p += len;
    uint8_t has_index = *p++;
    TEXTJOIN_ASSIGN_OR_RETURN(
        DocumentCollection col,
        OpenCollection(db->active_disk_, CatalogName(name, false)));
    db->collections_.emplace(
        name, std::make_unique<DocumentCollection>(std::move(col)));
    if (has_index != 0) {
      TEXTJOIN_ASSIGN_OR_RETURN(
          InvertedFile inv,
          OpenInvertedFile(db->active_disk_, CatalogName(name, true)));
      db->indexes_.emplace(name,
                           std::make_unique<InvertedFile>(std::move(inv)));
    }
  }

  // Dynamic collections (absent from images saved before they existed).
  // Each reopen replays that collection's WAL; flipped bytes surface here
  // as kDataLoss.
  Result<std::vector<uint8_t>> dyn =
      ReadDbRecord(db->active_disk_, kDynamicFile);
  if (dyn.ok()) {
    const uint8_t* q = dyn->data();
    const uint8_t* qend = q + dyn->size();
    if (q + 8 > qend) {
      return Status::InvalidArgument("truncated dynamic record");
    }
    uint64_t dyn_count = GetFixed64(q);
    q += 8;
    for (uint64_t i = 0; i < dyn_count; ++i) {
      if (q + 4 > qend) {
        return Status::InvalidArgument("truncated dynamic record");
      }
      uint32_t len = GetFixed32(q);
      q += 4;
      if (q + len > qend) {
        return Status::InvalidArgument("bad dynamic record");
      }
      std::string name(reinterpret_cast<const char*>(q), len);
      q += len;
      TEXTJOIN_ASSIGN_OR_RETURN(
          std::unique_ptr<DynamicCollection> dc,
          DynamicCollection::Open(db->active_disk_, name));
      db->dynamic_.emplace(name, std::move(dc));
    }
  } else if (dyn.status().code() != StatusCode::kNotFound) {
    return dyn.status();
  }
  return db;
}

}  // namespace textjoin
