#!/usr/bin/env bash
# Full verification: configure, build, run every test, every benchmark and
# every example. Exits non-zero on the first failure.
#
#   scripts/check.sh            normal mode
#   scripts/check.sh sanitize   ASan+UBSan build (separate build dir,
#                               tests only, selected via `ctest -L sanitize`)
set -euo pipefail
cd "$(dirname "$0")/.."

if [ "${1:-}" = "sanitize" ]; then
  cmake -B build-sanitize -G Ninja -DTEXTJOIN_SANITIZE=ON
  cmake --build build-sanitize
  ctest --test-dir build-sanitize -L sanitize --output-on-failure
  echo "SANITIZE CHECKS PASSED"
  exit 0
fi

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

for b in build/bench/bench_*; do
  [ -x "$b" ] || continue
  echo "== $b =="
  "$b"
done

for e in build/examples/example_*; do
  [ -x "$e" ] || continue
  echo "== $e =="
  "$e"
done

echo "ALL CHECKS PASSED"
