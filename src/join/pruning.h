#ifndef TEXTJOIN_JOIN_PRUNING_H_
#define TEXTJOIN_JOIN_PRUNING_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "join/cpu_stats.h"
#include "join/similarity.h"
#include "join/topk.h"
#include "text/document.h"
#include "text/types.h"

namespace textjoin {

// Exact top-lambda pruning — the MaxScore/WAND family of IR threshold
// algorithms adapted to the paper's three join executors.
//
// Write wt_i(t) = w_i(t) * idf(t) for a document's idf-scaled term weight
// (idf(t) = 1 when idf weighting is off). A pair's accumulated score is
//   acc = sum over common t of wt_1(t) * wt_2(t),
// every contribution nonnegative, so three classic inequalities bound it:
//   acc <= max_t wt_1 * sum_t wt_2          (Hoelder, either side)
//   acc <= sum_t wt_1 * max_t wt_2
//   acc <= ||wt_1|| * ||wt_2||              (Cauchy-Schwarz)
// and under cosine normalization the final score divides by the same
// norms Finalize uses. A candidate whose bound cannot beat the current
// lambda-th score theta — with BetterMatch tie-breaking, via
// TopKAccumulator::CannotQualify — can be skipped without changing the
// result set: TopKAccumulator keeps a set determined solely by the offered
// (doc, score) pairs, not by offer order, so omitting provably-losing
// offers is invisible. Evaluated pairs run the unchanged accumulation
// loops in ascending term order, so surviving scores stay bit-identical.
//
// Floating point: fp addition of nonnegative terms is monotone, so any
// partial accumulator value (finalized) is a valid lower bound on the
// final score, and the lambda-th largest partial is a valid (possibly
// stale, hence still valid) threshold. Bounds are computed in a different
// fp expression order than the accumulation they dominate; kBoundSlack
// absorbs that rounding so the algebraic inequality survives in fp.

// Relative slack applied to every upper bound before comparing against a
// threshold. The accumulation of n nonnegative products carries O(n*eps)
// relative error (eps = 2^-52); documents have < 2^24 cells, so 1e-9
// leaves three orders of magnitude of margin.
inline constexpr double kBoundSlack = 1.0 + 1e-9;

// Merge steps between bound re-checks inside an early-exit merge: checks
// cost two multiplies and a compare, so re-checking every step would eat
// the savings.
inline constexpr int64_t kEarlyExitStride = 8;

// Per-algorithm pruning switches, carried on JoinSpec. Everything defaults
// on; results are bit-identical either way (agreement_test and
// pruning_test enforce this).
struct PruningConfig {
  // Upper-bound checks: per-pair pre-checks in HHNL, accumulator admission
  // suppression in HVNL and VVM.
  bool bound_skip = true;
  // Early termination inside an HHNL merge when the remaining suffix bound
  // cannot lift the pair over the threshold.
  bool early_exit = true;
  // Adaptive galloping merge kernel for skewed document lengths.
  bool adaptive_merge = true;
  // Block-max traversal (index/inverted_file.h): per-block maxima refine
  // the admission bounds of HVNL/VVM (per-candidate document-span bounds,
  // accumulator trimming, whole-block skips with block-granular decode)
  // and let the galloping merge kernel probe block boundaries. Effective
  // only alongside the switch it refines (bound_skip for the suppression
  // layers, adaptive_merge for the kernel); results are bit-identical
  // either way (blockmax_test enforces this under TEXTJOIN_STRESS_SEED).
  bool block_skip = true;

  bool any() const {
    return bound_skip || early_exit || adaptive_merge || block_skip;
  }

  static PruningConfig Disabled() {
    return PruningConfig{false, false, false, false};
  }
};

// Scalar bound profile of one document under a similarity configuration.
struct DocBounds {
  double max_w = 0;    // max_t wt(t)
  double sum_w = 0;    // sum_t wt(t)
  double norm_w = 0;   // sqrt(sum_t wt(t)^2)
  // Reciprocal of the document's Finalize denominator factor: 1 when
  // cosine normalization is off, 0 for an empty document under cosine
  // (Finalize maps those scores to 0).
  double inv_norm = 1;
};

// Bound profile from the document's cells (needed when idf scaling is on).
// `finalize_norm` is the DocumentNorms value Finalize divides by (pass 1.0
// when cosine normalization is off).
DocBounds ComputeDocBounds(const Document& doc, const SimilarityContext& ctx,
                           double finalize_norm);

// Bound profile from catalog metadata alone — exact for raw (non-idf)
// weighting, where the catalog's precomputed max weight / weight sum /
// norm are the wt statistics. No document access.
DocBounds CatalogDocBounds(const DocumentCollection& collection, DocId doc,
                           double finalize_norm);

// Upper bound on the accumulated (pre-Finalize) score of a pair.
inline double PairUpperBoundAcc(const DocBounds& a, const DocBounds& b) {
  const double h1 = a.max_w * b.sum_w;
  const double h2 = a.sum_w * b.max_w;
  const double cs = a.norm_w * b.norm_w;
  return std::min(std::min(h1, h2), cs);
}

// Upper bound on the pair's FINAL score (cosine-normalized when the
// profiles carry inverse norms).
inline double PairUpperBound(const DocBounds& a, const DocBounds& b) {
  return PairUpperBoundAcc(a, b) * a.inv_norm * b.inv_norm;
}

// Suffix bounds over a document's cells in ascending term order:
// suffix_sum(i) / suffix_max(i) are the sum / max of wt over cells i..end
// (0 at i == size). They bound the contribution still ahead of a merge
// that has consumed the first i cells, enabling safe early exit.
class SuffixBounds {
 public:
  void Build(const Document& doc, const SimilarityContext& ctx);

  double suffix_sum(size_t i) const { return sum_[i]; }
  double suffix_max(size_t i) const { return max_[i]; }

 private:
  std::vector<double> sum_;  // size cells + 1, trailing 0
  std::vector<double> max_;
};

// One evaluated-or-pruned pair.
struct PrunedDotResult {
  DotDetail detail;         // partial when pruned (work done is still metered)
  int64_t bound_checks = 0;  // in-merge threshold checks performed
  bool pruned = false;       // true => the candidate provably cannot qualify
};

// WeightedDot with threshold-aware early exit: merges d1 and d2 exactly
// like WeightedDotKernel, but every kEarlyExitStride steps compares
//   (acc + remaining suffix bound) * inv_denom * kBoundSlack
// against `heap` (tie-broken as candidate document `doc`) and stops once
// the pair provably cannot qualify. A completed merge returns the
// bit-identical accumulated score. `inv_denom` is the product of the two
// documents' DocBounds::inv_norm. The optional DocBlockIndex pair switches
// the galloping kernel to block-boundary probing (see similarity.h).
PrunedDotResult WeightedDotPruned(const Document& d1, const Document& d2,
                                  const SimilarityContext& ctx,
                                  const SuffixBounds& b1,
                                  const SuffixBounds& b2, double inv_denom,
                                  DocId doc, const TopKAccumulator& heap,
                                  MergeKernel kernel,
                                  const DocBlockIndex* blocks1 = nullptr,
                                  const DocBlockIndex* blocks2 = nullptr);

// Smallest positive Finalize norm among the eligible inner documents
// (respecting `member` when non-empty), or 0 when none is positive. Used
// by HVNL, whose admission bound must hold for whichever inner document a
// posting cell names. Returns 1.0 when cosine normalization is off.
double MinEligibleNorm(const DocumentNorms& norms, int64_t num_documents,
                       const std::vector<char>& member, bool cosine);

}  // namespace textjoin

#endif  // TEXTJOIN_JOIN_PRUNING_H_
