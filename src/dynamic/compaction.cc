#include "dynamic/compaction.h"

#include <algorithm>
#include <utility>

#include "catalog/catalog.h"
#include "common/logging.h"
#include "dynamic/internal_format.h"

namespace textjoin {

namespace di = dynamic_internal;

Result<std::unique_ptr<CompactionJob>> CompactionJob::Begin(
    DynamicCollection* dc, int64_t docs_per_slice) {
  if (dc == nullptr) {
    return Status::InvalidArgument("compaction needs a collection");
  }
  if (docs_per_slice < 1) {
    return Status::InvalidArgument("docs_per_slice must be positive");
  }
  if (dc->active_job_ != nullptr) {
    return Status::FailedPrecondition("compaction of '" + dc->name_ +
                                      "' is already in progress");
  }
  auto job = std::unique_ptr<CompactionJob>(new CompactionJob());
  job->dc_ = dc;
  job->docs_per_slice_ = docs_per_slice;
  job->gen_ =
      di::MaxGenerationOnDisk(dc->disk_, dc->name_, dc->generation_) + 1;
  job->epoch0_ = dc->epoch_;
  job->base0_ = dc->base_;
  job->alive0_ = dc->alive_;
  for (const DynamicCollection::DeltaEntry& e : dc->delta_) {
    if (e.alive) job->delta0_.push_back(e);
  }
  job->keys_.reserve(static_cast<size_t>(dc->num_live_documents()));
  const di::GenerationFiles files = di::FilesOf(dc->name_, job->gen_);
  job->builder_ =
      std::make_unique<CollectionBuilder>(dc->disk_, files.data);
  job->scanner_.emplace(job->base0_.get());
  dc->active_job_ = job.get();
  return job;
}

CompactionJob::~CompactionJob() { Detach(); }

void CompactionJob::Detach() {
  if (dc_ != nullptr && dc_->active_job_ == this) dc_->active_job_ = nullptr;
}

void CompactionJob::Abort() {
  if (phase_ == Phase::kDone) return;
  phase_ = Phase::kAborted;
  Detach();
}

void CompactionJob::Capture(WalRecordType type, std::vector<uint8_t> payload) {
  if (phase_ == Phase::kDone || phase_ == Phase::kAborted) return;
  carried_.emplace_back(type, std::move(payload));
}

Status CompactionJob::StepBase(int64_t budget) {
  int64_t copied = 0;
  while (!scanner_->Done() && copied < budget) {
    const DocId id = scanner_->next_doc();
    TEXTJOIN_ASSIGN_OR_RETURN(Document doc, scanner_->Next());
    if (!alive0_[id]) continue;  // skipping a dead doc holds no memory
    TEXTJOIN_RETURN_IF_ERROR(builder_->AddDocument(doc).status());
    keys_.push_back(dc_->base_keys_[id]);
    ++copied;
  }
  if (scanner_->Done()) phase_ = Phase::kDelta;
  return Status::OK();
}

Status CompactionJob::StepDelta(int64_t budget) {
  int64_t copied = 0;
  while (delta_pos_ < delta0_.size() && copied < budget) {
    const DynamicCollection::DeltaDoc& d = delta0_[delta_pos_++];
    TEXTJOIN_RETURN_IF_ERROR(builder_->AddDocument(d.doc).status());
    keys_.push_back(d.key);
    ++copied;
  }
  if (delta_pos_ >= delta0_.size()) phase_ = Phase::kFinalize;
  return Status::OK();
}

Status CompactionJob::Finalize() {
  const di::GenerationFiles files = di::FilesOf(dc_->name_, gen_);
  TEXTJOIN_ASSIGN_OR_RETURN(DocumentCollection col, builder_->Finish());
  TEXTJOIN_ASSIGN_OR_RETURN(InvertedFile inv,
                            InvertedFile::Build(dc_->disk_, files.inv, col));
  TEXTJOIN_RETURN_IF_ERROR(SaveCollectionCatalog(col, files.col));
  TEXTJOIN_RETURN_IF_ERROR(SaveInvertedFileCatalog(inv, files.idx));
  TEXTJOIN_RETURN_IF_ERROR(di::WriteKeysFile(dc_->disk_, files.keys, keys_));
  TEXTJOIN_ASSIGN_OR_RETURN(WalWriter wal,
                            WalWriter::Create(dc_->disk_, files.wal));
  // Carried records land in the new WAL BEFORE the commit: if the commit
  // page never makes it, the old generation + old WAL (which also holds
  // them) stays authoritative; once it lands, replay of the new WAL
  // reproduces exactly the acknowledged state.
  for (const auto& [type, payload] : carried_) {
    TEXTJOIN_RETURN_IF_ERROR(wal.Append(type, payload));
  }

  // The atomic swap: until this single page write lands, reopening the
  // device resolves the OLD generation + OLD WAL; after it, the new one.
  TEXTJOIN_RETURN_IF_ERROR(
      dc_->CommitManifest(gen_, epoch0_ + 1, dc_->next_key_));
  committed_ = true;

  Status install = dc_->InstallGeneration(gen_, epoch0_ + 1, std::move(col),
                                          std::move(inv), std::move(keys_),
                                          std::move(wal), carried_);
  if (!install.ok()) return install;  // durable on disk; memory needs reopen
  phase_ = Phase::kDone;
  Detach();
  return Status::OK();
}

Result<bool> CompactionJob::Step(QueryGovernor* governor) {
  if (phase_ == Phase::kDone) return true;
  if (phase_ == Phase::kAborted) {
    return Status::FailedPrecondition("compaction job was aborted");
  }
  int64_t budget = docs_per_slice_;
  if (governor != nullptr) {
    if (Status cp = governor->Checkpoint("compact slice"); !cp.ok()) {
      Abort();
      return cp;
    }
    // Memory adaptation: under a page budget the job buffers at most that
    // many documents per slice (one buffered document charged as one
    // page — conservative for the small documents this engine stores).
    const int64_t cap = governor->CapBufferPages(docs_per_slice_);
    budget = std::max<int64_t>(1, std::min(docs_per_slice_, cap));
  }
  ++slices_;
  Status st = Status::OK();
  switch (phase_) {
    case Phase::kBase:
      st = StepBase(budget);
      break;
    case Phase::kDelta:
      st = StepDelta(budget);
      break;
    case Phase::kFinalize:
      st = Finalize();
      break;
    case Phase::kDone:
    case Phase::kAborted:
      break;
  }
  if (!st.ok()) {
    Abort();
    return st;
  }
  return phase_ == Phase::kDone;
}

}  // namespace textjoin
