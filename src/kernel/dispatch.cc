#include "kernel/dispatch.h"

#include <cstdlib>

namespace textjoin {
namespace kernel {

namespace {

// Compiled in AND reported usable by this CPU. The SIMD tables only exist
// when their translation units were compiled (TEXTJOIN_HAVE_* comes from
// src/kernel/CMakeLists.txt probing the compiler), so both conditions
// gate together here.
bool Usable(Level level) {
  switch (level) {
    case Level::kScalar:
      return true;
    case Level::kSse42:
#ifdef TEXTJOIN_HAVE_SSE42
      return __builtin_cpu_supports("sse4.2") != 0;
#else
      return false;
#endif
    case Level::kAvx2:
#ifdef TEXTJOIN_HAVE_AVX2
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
  }
  return false;
}

Level Detect() {
  Level level = Level::kScalar;
  if (Usable(Level::kSse42)) level = Level::kSse42;
  if (Usable(Level::kAvx2)) level = Level::kAvx2;
  // The env override only ever dials DOWN: naming a level the CPU or the
  // binary does not have silently keeps the detected one, so a config
  // copied to an older machine degrades instead of crashing on an
  // illegal instruction.
  const char* env = std::getenv("TEXTJOIN_KERNELS");
  if (env != nullptr) {
    Level want;
    if (ParseLevel(env, &want) && Usable(want) &&
        static_cast<int>(want) <= static_cast<int>(level)) {
      level = want;
    }
  }
  return level;
}

// Resolved once at first use; SetLevelForTest may move it afterwards.
Level& ActiveSlot() {
  static Level level = Detect();
  return level;
}

}  // namespace

const char* LevelName(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kSse42:
      return "sse42";
    case Level::kAvx2:
      return "avx2";
  }
  return "scalar";
}

bool ParseLevel(const std::string& name, Level* out) {
  if (name == "scalar") {
    *out = Level::kScalar;
  } else if (name == "sse42") {
    *out = Level::kSse42;
  } else if (name == "avx2") {
    *out = Level::kAvx2;
  } else {
    return false;
  }
  return true;
}

std::vector<Level> AvailableLevels() {
  std::vector<Level> levels;
  for (Level l : {Level::kScalar, Level::kSse42, Level::kAvx2}) {
    if (Usable(l)) levels.push_back(l);
  }
  return levels;
}

Level ActiveLevel() { return ActiveSlot(); }

const KernelTable& TableFor(Level level) {
  switch (level) {
#ifdef TEXTJOIN_HAVE_AVX2
    case Level::kAvx2:
      return kAvx2Table;
#endif
#ifdef TEXTJOIN_HAVE_SSE42
    case Level::kSse42:
      return kSse42Table;
#endif
    default:
      return kScalarTable;
  }
}

const KernelTable& Active() { return TableFor(ActiveSlot()); }

bool SetLevelForTest(Level level) {
  if (!Usable(level)) return false;
  ActiveSlot() = level;
  return true;
}

}  // namespace kernel
}  // namespace textjoin
