#include "join/hhnl.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "join/pruning.h"
#include "kernel/aligned.h"
#include "kernel/dispatch.h"
#include "obs/query_stats.h"

namespace textjoin {

namespace {

// Per-side pruning state of the HHNL pair loops. Bound profiles come from
// the catalog when idf weighting is off (no cell scan) and from one pass
// over the cells otherwise; suffix bounds are built only when the
// early-exit merge needs them.
struct PairPruner {
  explicit PairPruner(const JoinSpec& spec, const SimilarityContext& sim)
      : prune(spec.pruning),
        sim(sim),
        kernel(spec.pruning.adaptive_merge ? MergeKernel::kAdaptive
                                           : MergeKernel::kLinear) {}

  PruningConfig prune;
  const SimilarityContext& sim;
  MergeKernel kernel;

  // Bound-tightness telemetry: mean score/bound ratio of evaluated pairs.
  double tightness_sum = 0;
  int64_t tightness_n = 0;

  bool active() const { return prune.bound_skip || prune.early_exit; }

  // Block-boundary galloping only refines the adaptive kernel.
  bool use_blocks() const {
    return prune.adaptive_merge && prune.block_skip;
  }

  DocBounds Bounds(const DocumentCollection& collection, DocId doc,
                   const Document& d, const DocumentNorms& norms) const {
    const double n = sim.config.cosine_normalize ? norms.of(doc) : 1.0;
    return sim.config.use_idf ? ComputeDocBounds(d, sim, n)
                              : CatalogDocBounds(collection, doc, n);
  }

  void ReportTightness(QueryStatsCollector* stats) const {
    if (stats == nullptr || tightness_n == 0) return;
    stats->SetCounter(
        "bound_tightness_pct",
        static_cast<int64_t>(std::lround(
            100.0 * tightness_sum / static_cast<double>(tightness_n))));
  }

  // Batched PairUpperBound of one fixed document against the resident
  // batch, through the dispatched kernel. `fixed_is_a` says which argument
  // position the fixed document holds in PairUpperBound (the trailing
  // inv-norm multiplies associate left), so the batched bounds are
  // bit-identical to the per-pair calls they replace. No-op when batch
  // pruning is off.
  void BatchPairBounds(const DocBounds& fixed,
                       const std::vector<DocBounds>& cands, bool fixed_is_a,
                       kernel::DoubleBuffer* out) const {
    static_assert(sizeof(DocBounds) == 4 * sizeof(double),
                  "pair_bounds kernel assumes DocBounds is 4 packed doubles");
    if (!prune.bound_skip || cands.empty()) return;
    out->resize(cands.size());
    kernel::Active().pair_bounds(
        reinterpret_cast<const double*>(cands.data()),
        static_cast<int64_t>(cands.size()), fixed.max_w, fixed.sum_w,
        fixed.norm_w, fixed.inv_norm, fixed_is_a, out->data());
  }

  // Evaluates one candidate pair against `heap`, offering the finalized
  // score when the pair survives the bound checks. `inner_doc` is the
  // candidate identity (C1 side) for tie-breaking.
  void EvaluatePair(const Document& d1, const Document& d2,
                    const DocBounds& b1, const DocBounds& b2,
                    const SuffixBounds& s1, const SuffixBounds& s2,
                    DocId inner_doc, DocId outer_doc, TopKAccumulator* heap,
                    CpuStats* cpu, const DocBlockIndex* k1 = nullptr,
                    const DocBlockIndex* k2 = nullptr,
                    const double* precomputed_ub = nullptr) {
    double pair_ub = 0;
    if (prune.bound_skip) {
      // The check itself happens per pair whether the bound came from the
      // batched kernel or is computed here — the metering is identical.
      if (cpu != nullptr) ++cpu->bound_checks;
      pair_ub =
          precomputed_ub != nullptr ? *precomputed_ub : PairUpperBound(b1, b2);
      if (heap->CannotQualify(inner_doc, pair_ub * kBoundSlack)) {
        if (cpu != nullptr) ++cpu->pairs_pruned;
        return;
      }
    }
    double acc;
    if (prune.early_exit) {
      PrunedDotResult r =
          WeightedDotPruned(d1, d2, sim, s1, s2, b1.inv_norm * b2.inv_norm,
                            inner_doc, *heap, kernel, k1, k2);
      if (cpu != nullptr) {
        cpu->cell_compares += r.detail.merge_steps;
        cpu->accumulations += r.detail.common_terms;
        cpu->bound_checks += r.bound_checks;
        cpu->blocks_skipped += r.detail.blocks_skipped;
      }
      if (r.pruned) {
        if (cpu != nullptr) ++cpu->early_exits;
        return;
      }
      acc = r.detail.acc;
    } else if (cpu != nullptr || prune.adaptive_merge) {
      DotDetail d = WeightedDotKernel(d1, d2, sim, kernel, k1, k2);
      if (cpu != nullptr) {
        cpu->cell_compares += d.merge_steps;
        cpu->accumulations += d.common_terms;
        cpu->blocks_skipped += d.blocks_skipped;
      }
      acc = d.acc;
    } else {
      acc = WeightedDot(d1, d2, sim);
    }
    if (acc <= 0) return;
    if (cpu != nullptr) ++cpu->heap_offers;
    const double score = sim.Finalize(acc, inner_doc, outer_doc);
    if (prune.bound_skip && pair_ub > 0) {
      tightness_sum += score / pair_ub;
      ++tightness_n;
    }
    heap->Add(inner_doc, score);
  }
};

}  // namespace

int64_t HhnlJoin::BatchSize(const JoinContext& ctx, const JoinSpec& spec) {
  const double P = static_cast<double>(ctx.sys.page_size);
  // Under a governor memory budget the batch is sized from the capped
  // buffer: a smaller X, more outer batches, identical results.
  const double B = static_cast<double>(EffectiveBufferPages(ctx));
  const double s1 = std::ceil(ctx.inner->avg_doc_size_pages());
  const double s2 = ctx.outer->avg_doc_size_pages();
  const double denom = s2 + 4.0 * static_cast<double>(spec.lambda) / P;
  if (denom <= 0.0) return 0;
  return static_cast<int64_t>(std::floor((B - s1) / denom + 1e-9));
}

Result<JoinResult> HhnlJoin::Run(const JoinContext& ctx,
                                 const JoinSpec& spec) {
  TEXTJOIN_RETURN_IF_ERROR(ValidateJoinInputs(ctx, spec));
  return options_.backward ? RunBackward(ctx, spec) : RunForward(ctx, spec);
}

Result<JoinResult> HhnlJoin::RunForward(const JoinContext& ctx,
                                        const JoinSpec& spec) {
  const int64_t X = BatchSize(ctx, spec);
  if (X < 1) {
    return Status::ResourceExhausted(
        "HHNL: buffer cannot hold one outer and one inner document");
  }
  const std::vector<DocId> participating = ParticipatingOuterDocs(ctx, spec);
  const bool random_outer = !spec.outer_subset.empty();
  QueryStatsCollector* stats = ctx.stats;
  CpuStats* cpu = stats != nullptr ? stats->cpu() : nullptr;
  if (stats != nullptr) {
    stats->SetRootLabel("HHNL");
    stats->SetCounter("batch_size_X", X);
  }
  PairPruner pruner(spec, *ctx.similarity);

  JoinResult result;
  result.reserve(participating.size());

  // Sequential outer scan state (only used when no subset is given). The
  // scanner persists across batches so the outer collection is read once.
  auto outer_scan = ctx.outer->Scan();

  size_t pos = 0;
  while (pos < participating.size()) {
    TEXTJOIN_RETURN_IF_ERROR(GovernorCheckpoint(ctx, "HHNL outer batch"));
    const size_t batch_size =
        std::min<size_t>(static_cast<size_t>(X), participating.size() - pos);
    // Bring the next batch of outer documents into memory.
    std::vector<DocId> batch_docs(participating.begin() + pos,
                                  participating.begin() + pos + batch_size);
    std::vector<Document> batch;
    batch.reserve(batch_size);
    {
      PhaseScope read_outer(stats, phase::kReadOuter);
      for (DocId d : batch_docs) {
        if (random_outer) {
          TEXTJOIN_ASSIGN_OR_RETURN(Document doc, ctx.outer->ReadDocument(d));
          batch.push_back(std::move(doc));
        } else {
          TEXTJOIN_CHECK_EQ(outer_scan.next_doc(), d);
          TEXTJOIN_ASSIGN_OR_RETURN(Document doc, outer_scan.Next());
          batch.push_back(std::move(doc));
        }
      }
    }
    pos += batch_size;
    if (stats != nullptr) stats->AddCounter("outer_batches", 1);

    // Bound profiles of the resident batch (outer side).
    std::vector<DocBounds> batch_bounds;
    std::vector<SuffixBounds> batch_suffix;
    std::vector<DocBlockIndex> batch_blocks;
    if (pruner.active()) {
      batch_bounds.resize(batch_size);
      for (size_t i = 0; i < batch_size; ++i) {
        batch_bounds[i] = pruner.Bounds(*ctx.outer, batch_docs[i], batch[i],
                                        ctx.similarity->outer_norms);
      }
      if (pruner.prune.early_exit) {
        batch_suffix.resize(batch_size);
        for (size_t i = 0; i < batch_size; ++i) {
          batch_suffix[i].Build(batch[i], *ctx.similarity);
        }
      }
    }
    if (pruner.use_blocks()) {
      batch_blocks.resize(batch_size);
      for (size_t i = 0; i < batch_size; ++i) {
        batch_blocks[i].Build(batch[i]);
      }
    }

    std::vector<TopKAccumulator> heaps(batch_size,
                                       TopKAccumulator(spec.lambda));
    // Pass over the (participating) inner documents for this batch.
    PhaseScope scan_inner(stats, phase::kScanInner);
    DocBounds b1;
    SuffixBounds s1;
    DocBlockIndex k1;
    kernel::DoubleBuffer pair_ubs;  // batched bounds, one per resident doc
    const SuffixBounds no_suffix;
    TEXTJOIN_RETURN_IF_ERROR(ForEachInnerDoc(
        ctx, spec, [&](DocId inner_doc, const Document& d1) {
          if (pruner.active()) {
            b1 = pruner.Bounds(*ctx.inner, inner_doc, d1,
                               ctx.similarity->inner_norms);
            if (pruner.prune.early_exit) s1.Build(d1, *ctx.similarity);
          }
          if (pruner.use_blocks()) k1.Build(d1);
          // One kernel call bounds the inner document against the whole
          // resident batch (the inner document is PairUpperBound's first
          // argument here).
          const bool batched_ub = pruner.prune.bound_skip;
          if (batched_ub) {
            pruner.BatchPairBounds(b1, batch_bounds, /*fixed_is_a=*/true,
                                   &pair_ubs);
          }
          for (size_t i = 0; i < batch_size; ++i) {
            pruner.EvaluatePair(
                d1, batch[i], b1,
                batch_bounds.empty() ? b1 : batch_bounds[i], s1,
                batch_suffix.empty() ? no_suffix : batch_suffix[i],
                inner_doc, batch_docs[i], &heaps[i], cpu,
                pruner.use_blocks() ? &k1 : nullptr,
                batch_blocks.empty() ? nullptr : &batch_blocks[i],
                batched_ub ? &pair_ubs[i] : nullptr);
          }
        }));
    for (size_t i = 0; i < batch_size; ++i) {
      result.push_back(OuterMatches{batch_docs[i], heaps[i].TakeSorted()});
    }
  }
  pruner.ReportTightness(stats);
  return result;
}

Result<JoinResult> HhnlJoin::RunBackward(const JoinContext& ctx,
                                         const JoinSpec& spec) {
  const std::vector<DocId> participating = ParticipatingOuterDocs(ctx, spec);
  const bool random_outer = !spec.outer_subset.empty();
  const double P = static_cast<double>(ctx.sys.page_size);
  const double B = static_cast<double>(EffectiveBufferPages(ctx));
  const double s1 = ctx.inner->avg_doc_size_pages();
  const double s2 = std::ceil(ctx.outer->avg_doc_size_pages());
  const double heap_pages = 4.0 * static_cast<double>(spec.lambda) *
                            static_cast<double>(participating.size()) / P;
  if (s1 <= 0.0) {
    return Status::InvalidArgument("backward HHNL: empty inner documents");
  }
  const int64_t X =
      static_cast<int64_t>(std::floor((B - s2 - heap_pages) / s1 + 1e-9));
  if (X < 1) {
    return Status::ResourceExhausted(
        "HHNL backward: buffer cannot hold intermediate heaps plus one "
        "document of each collection");
  }
  QueryStatsCollector* stats = ctx.stats;
  CpuStats* cpu = stats != nullptr ? stats->cpu() : nullptr;
  if (stats != nullptr) {
    stats->SetRootLabel("HHNL backward");
    stats->SetCounter("batch_size_X", X);
  }
  PairPruner pruner(spec, *ctx.similarity);

  // One heap per participating outer document, alive for the whole run.
  std::vector<TopKAccumulator> heaps(participating.size(),
                                     TopKAccumulator(spec.lambda));

  const std::vector<char> inner_member = InnerMembership(ctx, spec);
  auto inner_scan = ctx.inner->Scan();
  while (!inner_scan.Done()) {
    TEXTJOIN_RETURN_IF_ERROR(GovernorCheckpoint(ctx, "HHNL inner batch"));
    // Load the next batch of (participating) inner documents.
    std::vector<DocId> batch_docs;
    std::vector<Document> batch;
    {
      PhaseScope read_inner(stats, phase::kReadInnerBatch);
      while (!inner_scan.Done() &&
             static_cast<int64_t>(batch.size()) < X) {
        DocId doc = inner_scan.next_doc();
        TEXTJOIN_ASSIGN_OR_RETURN(Document d, inner_scan.Next());
        if (!inner_member.empty() && !inner_member[doc]) continue;
        batch_docs.push_back(doc);
        batch.push_back(std::move(d));
      }
    }
    if (batch.empty()) continue;
    if (stats != nullptr) stats->AddCounter("inner_batches", 1);

    // Bound profiles of the resident batch (inner side).
    std::vector<DocBounds> batch_bounds;
    std::vector<SuffixBounds> batch_suffix;
    std::vector<DocBlockIndex> batch_blocks;
    if (pruner.active()) {
      batch_bounds.resize(batch.size());
      for (size_t i = 0; i < batch.size(); ++i) {
        batch_bounds[i] = pruner.Bounds(*ctx.inner, batch_docs[i], batch[i],
                                        ctx.similarity->inner_norms);
      }
      if (pruner.prune.early_exit) {
        batch_suffix.resize(batch.size());
        for (size_t i = 0; i < batch.size(); ++i) {
          batch_suffix[i].Build(batch[i], *ctx.similarity);
        }
      }
    }
    if (pruner.use_blocks()) {
      batch_blocks.resize(batch.size());
      for (size_t i = 0; i < batch.size(); ++i) {
        batch_blocks[i].Build(batch[i]);
      }
    }

    // Pass over the outer documents.
    PhaseScope rescan(stats, phase::kRescanOuter);
    auto outer_scan = ctx.outer->Scan();
    DocBounds b2;
    SuffixBounds s2;
    DocBlockIndex k2;
    kernel::DoubleBuffer pair_ubs;  // batched bounds, one per resident doc
    const SuffixBounds no_suffix;
    for (size_t oi = 0; oi < participating.size(); ++oi) {
      DocId outer_doc = participating[oi];
      Document d2;
      if (random_outer) {
        TEXTJOIN_ASSIGN_OR_RETURN(d2, ctx.outer->ReadDocument(outer_doc));
      } else {
        TEXTJOIN_CHECK_EQ(outer_scan.next_doc(), outer_doc);
        TEXTJOIN_ASSIGN_OR_RETURN(d2, outer_scan.Next());
      }
      if (pruner.active()) {
        b2 = pruner.Bounds(*ctx.outer, outer_doc, d2,
                           ctx.similarity->outer_norms);
        if (pruner.prune.early_exit) s2.Build(d2, *ctx.similarity);
      }
      if (pruner.use_blocks()) k2.Build(d2);
      // One kernel call bounds the outer document against the resident
      // inner batch (the outer document is PairUpperBound's second
      // argument here, hence fixed_is_a = false).
      const bool batched_ub = pruner.prune.bound_skip;
      if (batched_ub) {
        pruner.BatchPairBounds(b2, batch_bounds, /*fixed_is_a=*/false,
                               &pair_ubs);
      }
      for (size_t i = 0; i < batch.size(); ++i) {
        pruner.EvaluatePair(
            batch[i], d2, batch_bounds.empty() ? b2 : batch_bounds[i], b2,
            batch_suffix.empty() ? no_suffix : batch_suffix[i], s2,
            batch_docs[i], outer_doc, &heaps[oi], cpu,
            batch_blocks.empty() ? nullptr : &batch_blocks[i],
            pruner.use_blocks() ? &k2 : nullptr,
            batched_ub ? &pair_ubs[i] : nullptr);
      }
    }
  }

  JoinResult result;
  result.reserve(participating.size());
  for (size_t oi = 0; oi < participating.size(); ++oi) {
    result.push_back(OuterMatches{participating[oi], heaps[oi].TakeSorted()});
  }
  pruner.ReportTightness(stats);
  return result;
}

}  // namespace textjoin
