#ifndef TEXTJOIN_TEXT_TREC_LOADER_H_
#define TEXTJOIN_TEXT_TREC_LOADER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "storage/disk.h"
#include "text/collection.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace textjoin {

// Loader for the ARPA/NIST TREC SGML document format the paper's
// collections (WSJ, FR, DOE) are distributed in:
//
//   <DOC>
//   <DOCNO> WSJ870324-0001 </DOCNO>
//   <HL> ... optional fields ... </HL>
//   <TEXT>
//   body text ...
//   </TEXT>
//   </DOC>
//
// The TREC tapes themselves are licensed and not included in this
// repository; anyone holding them can load them here and run the
// experiments on the real data instead of the synthetic statistics-
// matched collections. Only <DOCNO> and <TEXT> are interpreted; other
// tags are ignored. Documents without a <TEXT> section are skipped.

struct TrecDocument {
  std::string docno;  // trimmed content of <DOCNO>
  std::string text;   // concatenated content of all <TEXT> sections
};

// Parses one TREC SGML stream.
Result<std::vector<TrecDocument>> ParseTrecStream(const std::string& sgml);

// Result of loading: the collection plus the DOCNO of each document (the
// document number in the collection is the index in `docnos`).
struct TrecCollection {
  DocumentCollection collection;
  std::vector<std::string> docnos;
};

// Parses, tokenizes (against the shared vocabulary) and builds a
// collection from TREC SGML text.
Result<TrecCollection> LoadTrecCollection(Disk* disk,
                                          const std::string& name,
                                          const std::string& sgml,
                                          Vocabulary* vocabulary,
                                          const Tokenizer& tokenizer);

// Convenience: reads the SGML from a host file.
Result<TrecCollection> LoadTrecCollectionFromFile(
    Disk* disk, const std::string& name, const std::string& path,
    Vocabulary* vocabulary, const Tokenizer& tokenizer);

}  // namespace textjoin

#endif  // TEXTJOIN_TEXT_TREC_LOADER_H_
