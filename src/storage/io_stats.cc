#include "storage/io_stats.h"

#include <sstream>

namespace textjoin {

std::string RetryStats::ToString() const {
  std::ostringstream os;
  os << "RetryStats{transient=" << transient_errors
     << ", checksum=" << checksum_failures << ", retries=" << retries
     << ", recovered=" << recovered_reads << ", exhausted=" << exhausted_reads
     << ", backoff_ms=" << backoff_ms << "}";
  return os.str();
}

std::string IoStats::ToString() const {
  std::ostringstream os;
  os << "IoStats{seq=" << sequential_reads << ", rand=" << random_reads
     << ", writes=" << page_writes;
  if (retry.any()) os << ", retry=" << retry.ToString();
  os << "}";
  return os.str();
}

}  // namespace textjoin
