#include <gtest/gtest.h>

#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace textjoin {
namespace {

class BufferPoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    disk_ = std::make_unique<SimulatedDisk>(8);
    file_ = disk_->CreateFile("f");
    for (uint8_t i = 0; i < 10; ++i) {
      std::vector<uint8_t> page(8, i);
      ASSERT_TRUE(disk_->AppendPage(file_, page.data(), 8).ok());
    }
  }

  std::unique_ptr<SimulatedDisk> disk_;
  FileId file_;
};

TEST_F(BufferPoolTest, PinReturnsPageContent) {
  BufferPool pool(disk_.get(), 4);
  auto p = pool.Pin(file_, 3);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ((*p.value()), 3);
  EXPECT_TRUE(pool.Unpin(file_, 3).ok());
}

TEST_F(BufferPoolTest, HitDoesNotTouchDisk) {
  BufferPool pool(disk_.get(), 4);
  ASSERT_TRUE(pool.Pin(file_, 2).ok());
  ASSERT_TRUE(pool.Unpin(file_, 2).ok());
  disk_->ResetStats();
  ASSERT_TRUE(pool.Pin(file_, 2).ok());
  EXPECT_EQ(disk_->stats().total_reads(), 0);
  EXPECT_EQ(pool.hit_count(), 1);
  EXPECT_EQ(pool.miss_count(), 1);
  ASSERT_TRUE(pool.Unpin(file_, 2).ok());
}

TEST_F(BufferPoolTest, EvictsLruUnpinned) {
  BufferPool pool(disk_.get(), 2);
  for (PageNumber p : {0, 1}) {
    ASSERT_TRUE(pool.Pin(file_, p).ok());
    ASSERT_TRUE(pool.Unpin(file_, p).ok());
  }
  // Page 0 is least recently used; pinning page 2 evicts it.
  ASSERT_TRUE(pool.Pin(file_, 2).ok());
  ASSERT_TRUE(pool.Unpin(file_, 2).ok());
  disk_->ResetStats();
  ASSERT_TRUE(pool.Pin(file_, 1).ok());  // still cached
  EXPECT_EQ(disk_->stats().total_reads(), 0);
  ASSERT_TRUE(pool.Pin(file_, 0).ok());  // was evicted
  EXPECT_EQ(disk_->stats().total_reads(), 1);
  ASSERT_TRUE(pool.Unpin(file_, 1).ok());
  ASSERT_TRUE(pool.Unpin(file_, 0).ok());
}

TEST_F(BufferPoolTest, PinnedPagesAreNotEvicted) {
  BufferPool pool(disk_.get(), 2);
  ASSERT_TRUE(pool.Pin(file_, 0).ok());  // stays pinned
  ASSERT_TRUE(pool.Pin(file_, 1).ok());
  ASSERT_TRUE(pool.Unpin(file_, 1).ok());
  ASSERT_TRUE(pool.Pin(file_, 2).ok());  // evicts 1, not pinned 0
  disk_->ResetStats();
  auto p = pool.Pin(file_, 0);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(disk_->stats().total_reads(), 0);
}

TEST_F(BufferPoolTest, AllPinnedExhaustsPool) {
  BufferPool pool(disk_.get(), 2);
  ASSERT_TRUE(pool.Pin(file_, 0).ok());
  ASSERT_TRUE(pool.Pin(file_, 1).ok());
  auto p = pool.Pin(file_, 2);
  EXPECT_FALSE(p.ok());
  EXPECT_EQ(p.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(BufferPoolTest, UnpinErrors) {
  BufferPool pool(disk_.get(), 2);
  EXPECT_FALSE(pool.Unpin(file_, 0).ok());  // never pinned
  ASSERT_TRUE(pool.Pin(file_, 0).ok());
  ASSERT_TRUE(pool.Unpin(file_, 0).ok());
  EXPECT_FALSE(pool.Unpin(file_, 0).ok());  // double unpin
}

TEST_F(BufferPoolTest, FlushAllFailsWhenPinned) {
  BufferPool pool(disk_.get(), 2);
  ASSERT_TRUE(pool.Pin(file_, 0).ok());
  EXPECT_FALSE(pool.FlushAll().ok());
  ASSERT_TRUE(pool.Unpin(file_, 0).ok());
  EXPECT_TRUE(pool.FlushAll().ok());
  EXPECT_EQ(pool.cached_pages(), 0);
}

TEST_F(BufferPoolTest, PinnedPageGuardReleases) {
  BufferPool pool(disk_.get(), 2);
  {
    auto p = pool.Pin(file_, 0);
    ASSERT_TRUE(p.ok());
    PinnedPage guard(&pool, file_, 0, p.value());
    EXPECT_TRUE(guard.valid());
  }
  // Guard released its pin: flushing succeeds.
  EXPECT_TRUE(pool.FlushAll().ok());
}

}  // namespace
}  // namespace textjoin
