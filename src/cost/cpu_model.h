#ifndef TEXTJOIN_COST_CPU_MODEL_H_
#define TEXTJOIN_COST_CPU_MODEL_H_

#include "cost/cost_model.h"

namespace textjoin {

// Analytic CPU-work model — the Section 7 "further studies" extension
// ("develop cost formulas that include CPU cost"). Estimates the
// operation counts the executors meter in CpuStats (join/cpu_stats.h).
//
// Shared quantities, with m participating outer documents:
//   L1 = K1*N1/T1             average inverted-entry length on C1 (cells)
//   c  = q*K2*K1/T1           expected common terms of a document pair
//
// A useful invariant: the number of similarity *accumulations* is the
// same for all three algorithms —
//   sum over shared terms t of df1(t) * df2(t)  ~=  m * N1 * c
// — they differ in the surrounding work (HHNL walks both documents per
// pair, HVNL/VVM decode inverted cells), which is what makes CPU-aware
// ranking interesting when everything fits in memory.
struct CpuEstimate {
  double cell_compares = 0;
  double accumulations = 0;
  double heap_offers = 0;
  double cells_decoded = 0;
  // Pruning extension (join/pruning.h): bound evaluations the executor
  // performs (counted work), and pairs/candidates it expects to skip
  // (avoided work — informational, not part of Total()).
  double bound_checks = 0;
  double pairs_pruned = 0;

  double Total() const {
    return cell_compares + accumulations + heap_offers + cells_decoded +
           bound_checks;
  }
};

// Expected fraction of candidate pairs the top-lambda bounds prune away.
// Of the ~delta*N1 non-zero candidates per outer document only lambda must
// be evaluated in full; the catalog bounds are loose (max * sum products),
// so the model credits only half of the provably-losing remainder. Clamped
// to [0, 0.9]; 0 when pruning cannot help (lambda >= delta*N1).
double ExpectedPruningRate(const CostInputs& in);

// When in.pruning_rate > 0 (the planner sets it from the query's
// PruningConfig via ExpectedPruningRate) the estimates discount the merge,
// accumulation and heap work by the expected pruning rate and charge the
// bound checks instead; in.adaptive_merge additionally caps HHNL's
// per-pair merge cost by the galloping kernel's probe count on skewed
// document lengths. in.block_skip refines both: block-summary galloping
// halves HHNL's probe count, and block-granular decode discounts the
// pruned share of HVNL's fetched cells and VVM's C1 scan. With all three
// at their defaults (0, false, false) the estimates are exactly the
// unpruned formulas.
CpuEstimate HhnlCpuCost(const CostInputs& in);
CpuEstimate HvnlCpuCost(const CostInputs& in);
CpuEstimate VvmCpuCost(const CostInputs& in);

// Combined cost in sequential-page-read units: I/O cost plus CPU
// operations divided by `ops_per_page_read` (how many counted operations
// take as long as one sequential page read on the target machine).
double CombinedCost(const AlgorithmCost& io, const CpuEstimate& cpu,
                    double ops_per_page_read);

}  // namespace textjoin

#endif  // TEXTJOIN_COST_CPU_MODEL_H_
