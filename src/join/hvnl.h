#ifndef TEXTJOIN_JOIN_HVNL_H_
#define TEXTJOIN_JOIN_HVNL_H_

#include "join/executor.h"

namespace textjoin {

// Horizontal-Vertical Nested Loop (Section 4.2): reads each outer (C2)
// document in turn and probes the inverted file on C1 for the document's
// terms, accumulating similarities against all C1 documents at once.
//
// Memory budget (the paper's formula): after one outer document
// (ceil(S2) pages), the whole C1 B+tree (Bt1 pages, loaded once up front)
// and the non-zero similarity accumulator (4*N1*delta/P pages), the
// remaining buffer caches
//   X = floor((B - ceil(S2) - Bt1 - 4*N1*delta/P) / (J1 + |t#|/P))
// inverted entries. On overflow, the entry whose term has the lowest
// document frequency *in C2* is replaced — it is the least likely to be
// needed again (the paper's policy). LRU is available as an ablation.
class HvnlJoin : public TextJoinAlgorithm {
 public:
  enum class Replacement {
    kLowestOuterDf,  // the paper's policy
    kLru,            // ablation baseline
  };

  // In which order the outer documents are processed.
  enum class OuterOrder {
    // Storage order: one sequential scan of C2 (the paper's choice).
    kStorage,
    // The "seemingly attractive alternative" of Section 4.2: always pick
    // the unprocessed document whose terms' inverted entries intersect
    // the cache the most. The paper points out both problems this has —
    // the optimal order is NP-hard (greedy is a heuristic) and documents
    // are no longer read in storage order (every read is positioned) —
    // and this implementation exhibits exactly those costs: one metered
    // pass over C2 to learn the term lists, then positioned re-reads in
    // greedy order. bench_ablation_hvnl weighs the fetch savings against
    // the extra document I/O.
    kGreedyIntersection,
  };

  struct Options {
    Replacement replacement = Replacement::kLowestOuterDf;
    OuterOrder order = OuterOrder::kStorage;
  };

  HvnlJoin() : HvnlJoin(Options{}) {}
  explicit HvnlJoin(Options options) : options_(options) {}

  Algorithm kind() const override { return Algorithm::kHvnl; }

  Result<JoinResult> Run(const JoinContext& ctx,
                         const JoinSpec& spec) override;

  // The entry-cache capacity (number of inverted entries); negative means
  // the fixed parts alone do not fit.
  static int64_t CacheCapacity(const JoinContext& ctx, const JoinSpec& spec);

  // Observability for tests and ablations.
  struct RunStats {
    int64_t entry_fetches = 0;  // entries read from disk (incl. re-reads)
    int64_t cache_hits = 0;
    int64_t evictions = 0;
    // Accumulator admissions suppressed by the top-lambda bound (candidates
    // proven unable to qualify before their first accumulation), and how
    // often the threshold theta was recomputed (join/pruning.h).
    int64_t suppressed_candidates = 0;
    int64_t theta_rebuilds = 0;
    // Block-max traversal (PruningConfig::block_skip): posting blocks
    // passed over undecoded because admission was closed and no live
    // accumulator document fell inside the block's span, and accumulator
    // entries retired early because even their block-refined remaining
    // bound could not lift them to theta.
    int64_t blocks_skipped = 0;
    int64_t accumulators_trimmed = 0;
  };
  const RunStats& run_stats() const { return run_stats_; }

 private:
  Options options_;
  RunStats run_stats_;
};

}  // namespace textjoin

#endif  // TEXTJOIN_JOIN_HVNL_H_
