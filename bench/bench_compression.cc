// Posting-list compression ablation (ours): the paper's inverted files
// use fixed 5-byte i-cells; delta+varint coding shrinks them — which in
// the cost model's terms shrinks I (file pages) and J (entry pages), and
// so the measured cost of the inverted-file algorithms. HHNL reads no
// inverted files and is unaffected, shifting the crossover points.

#include <cstdio>

#include "storage/disk_manager.h"
#include "common/logging.h"
#include "index/inverted_file.h"
#include "join/hvnl.h"
#include "join/vvm.h"
#include "sim/synthetic.h"

namespace textjoin {
namespace {

constexpr int64_t kPage = 512;

void Report(const char* label, const InvertedFile& plain,
            const InvertedFile& packed) {
  std::printf("%-10s plain: %6lld pages (%8lld bytes)   compressed: %6lld "
              "pages (%8lld bytes)   ratio %.2f\n",
              label, static_cast<long long>(plain.size_in_pages()),
              static_cast<long long>(plain.size_in_bytes()),
              static_cast<long long>(packed.size_in_pages()),
              static_cast<long long>(packed.size_in_bytes()),
              static_cast<double>(plain.size_in_bytes()) /
                  static_cast<double>(packed.size_in_bytes()));
}

}  // namespace
}  // namespace textjoin

int main() {
  using namespace textjoin;
  std::printf("== Posting compression: delta + varint vs 5-byte cells ==\n");

  SimulatedDisk disk(kPage);
  // A dense collection (small universe => small document gaps) and a
  // sparse one (large universe => large gaps, weaker compression).
  SyntheticSpec dense_spec{800, 12.0, 600, 1.0, 0, 61};
  SyntheticSpec sparse_spec{800, 12.0, 60000, 1.0, 0, 62};
  auto dense = GenerateCollection(&disk, "dense", dense_spec);
  auto sparse = GenerateCollection(&disk, "sparse", sparse_spec);
  TEXTJOIN_CHECK_OK(dense.status());
  TEXTJOIN_CHECK_OK(sparse.status());

  InvertedFile::BuildOptions packed_opts{PostingCompression::kDeltaVarint};
  auto dense_plain = InvertedFile::Build(&disk, "dense.inv", *dense);
  auto dense_packed =
      InvertedFile::Build(&disk, "dense.vinv", *dense, packed_opts);
  auto sparse_plain = InvertedFile::Build(&disk, "sparse.inv", *sparse);
  auto sparse_packed =
      InvertedFile::Build(&disk, "sparse.vinv", *sparse, packed_opts);
  TEXTJOIN_CHECK_OK(dense_plain.status());
  TEXTJOIN_CHECK_OK(dense_packed.status());
  TEXTJOIN_CHECK_OK(sparse_plain.status());
  TEXTJOIN_CHECK_OK(sparse_packed.status());

  Report("dense", *dense_plain, *dense_packed);
  Report("sparse", *sparse_plain, *sparse_packed);

  // Measured join I/O on the dense workload.
  auto outer = GenerateCollection(
      &disk, "outer", SyntheticSpec{500, 10.0, 600, 1.0, 0, 63});
  TEXTJOIN_CHECK_OK(outer.status());
  auto outer_plain = InvertedFile::Build(&disk, "outer.inv", *outer);
  auto outer_packed =
      InvertedFile::Build(&disk, "outer.vinv", *outer, packed_opts);
  TEXTJOIN_CHECK_OK(outer_plain.status());
  TEXTJOIN_CHECK_OK(outer_packed.status());
  auto simctx = SimilarityContext::Create(*dense, *outer, {});
  TEXTJOIN_CHECK_OK(simctx.status());

  JoinContext ctx;
  ctx.inner = &dense.value();
  ctx.outer = &outer.value();
  ctx.similarity = &simctx.value();
  ctx.sys = SystemParams{60, kPage, 5.0};
  JoinSpec spec;
  spec.lambda = 10;

  std::printf("\n%-8s %18s %18s\n", "algo", "cost(plain)", "cost(packed)");
  for (int pass = 0; pass < 2; ++pass) {
    ctx.inner_index = &dense_plain.value();
    ctx.outer_index = &outer_plain.value();
    VvmJoin vvm;
    HvnlJoin hvnl;
    double plain_cost, packed_cost;
    auto run = [&](TextJoinAlgorithm& algo) {
      disk.ResetStats();
      disk.ResetHeads();
      TEXTJOIN_CHECK_OK(algo.Run(ctx, spec).status());
      return disk.stats().Cost(5.0);
    };
    if (pass == 0) {
      plain_cost = run(vvm);
      ctx.inner_index = &dense_packed.value();
      ctx.outer_index = &outer_packed.value();
      packed_cost = run(vvm);
      std::printf("%-8s %18.0f %18.0f\n", "VVM", plain_cost, packed_cost);
    } else {
      plain_cost = run(hvnl);
      ctx.inner_index = &dense_packed.value();
      ctx.outer_index = &outer_packed.value();
      packed_cost = run(hvnl);
      std::printf("%-8s %18.0f %18.0f\n", "HVNL", plain_cost, packed_cost);
    }
  }
  return 0;
}
