#ifndef TEXTJOIN_DYNAMIC_DELTA_JOIN_H_
#define TEXTJOIN_DYNAMIC_DELTA_JOIN_H_

#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "dynamic/dynamic_collection.h"
#include "join/executor.h"
#include "planner/planner.h"

namespace textjoin {

// One side of a dynamic-aware join: the durable base (collection + index),
// a liveness mask over its dense DocIds, the in-memory delta documents,
// and this side's live document-frequency statistics.
struct DynamicJoinSide {
  const DocumentCollection* base = nullptr;
  const InvertedFile* index = nullptr;       // may be null
  const std::vector<char>* alive = nullptr;  // null = every base doc live
  std::vector<const Document*> delta;        // alive delta, insertion order
  std::unordered_map<TermId, int64_t> df;    // live df of this side
};

DynamicJoinSide MakeJoinSide(const DynamicCollection& dc);
DynamicJoinSide MakeJoinSide(const DocumentCollection& base,
                             const InvertedFile* index);

// Joins two dynamic views with results bit-identical to rebuilding each
// side from its live documents and running the chosen executor:
//
//   * Similarity statistics (df, N, idf, norms) are the MERGED live
//     statistics, evaluated with the exact static-path expressions.
//   * Base x base pairs run through the UNMODIFIED executor (liveness
//     becomes a subset), so their accumulation order — and therefore every
//     floating-point sum — is the static path's.
//   * Delta contributions accumulate in the same ascending-term order and
//     are folded per outer row by re-running top-lambda selection
//     (top-k(top-k(A) u B) = top-k(A u B), with BetterMatch ties preserved
//     because merged ids are order-isomorphic to a rebuild's dense ids).
//
// Merged doc ids: base ids stay; the j-th alive delta doc of a side is
// base.num_documents() + j. spec.outer_subset / inner_subset must be empty
// (selection pushdown composes with liveness ambiguously; rejected as
// InvalidArgument). When `force` is non-null that algorithm runs;
// otherwise the planner picks over the base collections. `chosen`
// (optional) reports the base plan.
Result<JoinResult> DynamicJoin(const DynamicJoinSide& inner,
                               const DynamicJoinSide& outer,
                               const JoinSpec& spec, const SystemParams& sys,
                               QueryGovernor* governor, PlanChoice* chosen,
                               const Algorithm* force = nullptr);

}  // namespace textjoin

#endif  // TEXTJOIN_DYNAMIC_DELTA_JOIN_H_
