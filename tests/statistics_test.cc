#include <gtest/gtest.h>

#include <cmath>

#include "storage/disk_manager.h"
#include "cost/cost_model.h"
#include "cost/statistics.h"
#include "test_util.h"

namespace textjoin {
namespace {

using testing_util::BuildCollection;

TEST(StatisticsTest, StatisticsOfBuiltCollection) {
  SimulatedDisk disk(100);
  auto col = BuildCollection(&disk, "c",
                             {{{1, 1}, {2, 1}}, {{2, 1}, {3, 1}, {4, 1}}});
  CollectionStatistics s = StatisticsOf(col);
  EXPECT_EQ(s.num_documents, 2);
  EXPECT_DOUBLE_EQ(s.avg_terms_per_doc, 2.5);
  EXPECT_EQ(s.num_distinct_terms, 4);
  EXPECT_DOUBLE_EQ(s.AvgDocPages(100), 0.125);
  EXPECT_DOUBLE_EQ(s.CollectionPages(100), 0.25);
  // J = 5*K*N/(T*P) = 25/(4*100); I = J*T = collection size.
  EXPECT_DOUBLE_EQ(s.AvgEntryPages(100), 25.0 / 400.0);
  EXPECT_DOUBLE_EQ(s.InvertedFilePages(100), 0.25);
  EXPECT_DOUBLE_EQ(s.BTreePages(100), 0.36);
}

TEST(StatisticsTest, ReducedStatisticsUsesGrowthCurve) {
  CollectionStatistics s{200, 8.0, 40};
  CollectionStatistics r = ReducedStatistics(s, 3);
  EXPECT_EQ(r.num_documents, 3);
  EXPECT_DOUBLE_EQ(r.avg_terms_per_doc, 8.0);
  EXPECT_EQ(r.num_distinct_terms,
            static_cast<int64_t>(std::llround(DistinctTermsAfter(3, 8, 40))));
  // Reducing to everything keeps T (approximately saturated).
  CollectionStatistics full = ReducedStatistics(s, 200);
  EXPECT_NEAR(static_cast<double>(full.num_distinct_terms), 40.0, 1.0);
  // Zero documents.
  EXPECT_EQ(ReducedStatistics(s, 0).num_distinct_terms, 0);
}

TEST(StatisticsTest, RescaledKeepsCollectionSize) {
  CollectionStatistics s{200, 8.0, 40};
  CollectionStatistics r = RescaledStatistics(s, 4);
  EXPECT_EQ(r.num_documents, 50);
  EXPECT_DOUBLE_EQ(r.avg_terms_per_doc, 32.0);
  EXPECT_DOUBLE_EQ(r.CollectionPages(100), s.CollectionPages(100));
  EXPECT_EQ(r.num_distinct_terms, s.num_distinct_terms);
}

TEST(StatisticsTest, RescaledClampsToOneDocument) {
  CollectionStatistics s{10, 8.0, 40};
  CollectionStatistics r = RescaledStatistics(s, 100);
  EXPECT_EQ(r.num_documents, 1);
  EXPECT_DOUBLE_EQ(r.avg_terms_per_doc, 80.0);
}

TEST(StatisticsTest, MeasuredTermOverlap) {
  SimulatedDisk disk(100);
  auto c1 = BuildCollection(&disk, "c1", {{{1, 1}, {2, 1}, {3, 1}, {4, 1}}});
  auto c2 = BuildCollection(&disk, "c2", {{{3, 1}, {4, 1}, {5, 1}, {6, 1}}});
  // Of c2's four terms, two (3 and 4) appear in c1.
  EXPECT_DOUBLE_EQ(MeasuredTermOverlap(c2, c1), 0.5);
  EXPECT_DOUBLE_EQ(MeasuredTermOverlap(c1, c2), 0.5);
  // Identical collections overlap fully.
  EXPECT_DOUBLE_EQ(MeasuredTermOverlap(c1, c1), 1.0);
}

TEST(StatisticsTest, MeasuredDeltaBounds) {
  SimulatedDisk disk(100);
  auto c1 = BuildCollection(&disk, "c1", {{{1, 1}}, {{2, 1}}});
  auto c2 = BuildCollection(&disk, "c2", {{{1, 1}}, {{3, 1}}});
  double delta = MeasuredDelta(c1, c2);
  // Only the (doc0, doc0) pair can share a term; the independence estimate
  // is 1/4 of pairs.
  EXPECT_NEAR(delta, 0.25, 1e-9);
  // Disjoint collections: zero.
  auto c3 = BuildCollection(&disk, "c3", {{{9, 1}}});
  EXPECT_DOUBLE_EQ(MeasuredDelta(c1, c3), 0.0);
}

TEST(StatisticsTest, MeasuredDeltaSaturatesAtOne) {
  SimulatedDisk disk(100);
  // Every document contains term 7: every pair is non-zero.
  auto c1 = BuildCollection(&disk, "c1", {{{7, 1}}, {{7, 2}}});
  EXPECT_DOUBLE_EQ(MeasuredDelta(c1, c1), 1.0);
}

}  // namespace
}  // namespace textjoin
