#include "index/posting_cursor.h"

#include <algorithm>

#include "common/logging.h"
#include "storage/page_stream.h"

namespace textjoin {

BlockLazyEntry::BlockLazyEntry(const InvertedFile::EntryMeta* meta,
                               PostingCompression compression,
                               std::vector<uint8_t> raw)
    : meta_(meta), compression_(compression), raw_(std::move(raw)) {
  cells_.resize(static_cast<size_t>(meta_->cell_count));
  decoded_.assign(meta_->blocks.size(), 0);
}

Result<const ICell*> BlockLazyEntry::Block(int64_t b, int64_t* newly_decoded) {
  TEXTJOIN_CHECK_GE(b, 0);
  TEXTJOIN_CHECK_LT(b, num_blocks());
  const InvertedFile::PostingBlockMeta& bm = block(b);
  const int64_t begin = BlockCellBegin(b);
  if (newly_decoded != nullptr) *newly_decoded = 0;
  if (!decoded_[static_cast<size_t>(b)]) {
    const int64_t end_offset = b + 1 < num_blocks()
                                   ? block(b + 1).offset_bytes
                                   : meta_->byte_length;
    if (bm.offset_bytes < 0 || end_offset > static_cast<int64_t>(raw_.size()) ||
        bm.offset_bytes > end_offset ||
        begin + bm.cell_count > cell_count()) {
      return Status::DataLoss("posting block metadata out of range");
    }
    // Decode straight into the entry's cell storage: cells_ was sized at
    // construction, so the hot path performs no allocation and no copy.
    // On failure the block's decoded_ flag stays clear, so no partially-
    // written cells are ever observable.
    TEXTJOIN_RETURN_IF_ERROR(
        DecodePostingBlockInto(raw_.data() + bm.offset_bytes,
                               end_offset - bm.offset_bytes, bm.cell_count,
                               compression_, cells_.data() + begin));
    decoded_[static_cast<size_t>(b)] = 1;
    ++blocks_decoded_;
    if (newly_decoded != nullptr) *newly_decoded = bm.cell_count;
  }
  return cells_.data() + begin;
}

Result<const kernel::ICellBuffer*> BlockLazyEntry::All(
    int64_t* newly_decoded) {
  int64_t total = 0;
  for (int64_t b = 0; b < num_blocks(); ++b) {
    int64_t n = 0;
    TEXTJOIN_RETURN_IF_ERROR(Block(b, &n).status());
    total += n;
  }
  if (newly_decoded != nullptr) *newly_decoded = total;
  return &cells_;
}

PostingCursor::PostingCursor(const InvertedFile* file, int64_t entry_index)
    : file_(file),
      entry_(&file->entries()[static_cast<size_t>(entry_index)]) {}

Status PostingCursor::Init() {
  std::vector<uint8_t> bytes;
  PageStreamReader reader(file_->disk(), file_->file());
  TEXTJOIN_RETURN_IF_ERROR(
      reader.Read(entry_->offset_bytes, entry_->byte_length, &bytes));
  lazy_ = BlockLazyEntry(entry_, file_->compression(), std::move(bytes));
  at_ = 0;
  return entry_->cell_count > 0 ? LoadCurrent() : Status::OK();
}

Status PostingCursor::LoadCurrent() {
  const int64_t b = at_ / kPostingBlockCells;
  int64_t n = 0;
  TEXTJOIN_ASSIGN_OR_RETURN(const ICell* cells, lazy_.Block(b, &n));
  cells_decoded_ += n;
  if (n > 0) last_decoded_block_ = b;
  current_ = cells + (at_ - BlockLazyEntry::BlockCellBegin(b));
  return Status::OK();
}

Status PostingCursor::Next() {
  if (done()) return Status::OutOfRange("posting cursor past end");
  ++at_;
  if (done()) return Status::OK();
  return LoadCurrent();
}

Status PostingCursor::NextGEQ(DocId target) {
  if (done()) return Status::OK();
  if (current_->doc >= target) return Status::OK();
  // Jump over whole blocks whose span ends before the target.
  int64_t b = at_ / kPostingBlockCells;
  int64_t jump_from = b;
  while (b < lazy_.num_blocks() && lazy_.block(b).last_doc < target) ++b;
  blocks_skipped_ += std::max<int64_t>(0, b - jump_from - 1);
  if (b >= lazy_.num_blocks()) {
    at_ = entry_->cell_count;  // exhausted
    return Status::OK();
  }
  if (b != jump_from) at_ = BlockLazyEntry::BlockCellBegin(b);
  // Binary search inside the (single) candidate block.
  int64_t n = 0;
  TEXTJOIN_ASSIGN_OR_RETURN(const ICell* cells, lazy_.Block(b, &n));
  cells_decoded_ += n;
  const int64_t begin = BlockLazyEntry::BlockCellBegin(b);
  const int64_t count = lazy_.block(b).cell_count;
  const ICell* lo = cells + (at_ - begin);
  const ICell* hi = cells + count;
  const ICell* it = std::lower_bound(
      lo, hi, target,
      [](const ICell& c, DocId d) { return c.doc < d; });
  at_ = begin + (it - cells);
  if (at_ >= entry_->cell_count) return Status::OK();
  if (it == hi) {
    // Target falls between this block and the next: step into the next
    // block (its first cell is the answer, since its last_doc >= target).
    return LoadCurrent();
  }
  current_ = it;
  return Status::OK();
}

Status PostingCursor::SkipToBlock(int64_t b) {
  if (b < at_ / kPostingBlockCells) {
    return Status::InvalidArgument("posting cursor only moves forward");
  }
  if (b >= lazy_.num_blocks()) {
    at_ = entry_->cell_count;
    return Status::OK();
  }
  blocks_skipped_ += std::max<int64_t>(0, b - at_ / kPostingBlockCells - 1);
  at_ = BlockLazyEntry::BlockCellBegin(b);
  return LoadCurrent();
}

}  // namespace textjoin
