#include "join/vvm.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/logging.h"
#include "common/math_util.h"
#include "obs/query_stats.h"

namespace textjoin {

// Accumulator keys pack the (outer, inner) document pair into 64 bits:
// outer in the high word, inner in the low word (document numbers are
// 3 bytes, so this is lossless).

int64_t VvmJoin::Passes(const JoinContext& ctx, const JoinSpec& spec) {
  const double P = static_cast<double>(ctx.sys.page_size);
  // A governor memory budget shrinks the matrix partition M: more, smaller
  // passes over the same data, identical results.
  const double B = static_cast<double>(EffectiveBufferPages(ctx));
  const double M = B - std::ceil(ctx.inner_index->avg_entry_size_pages()) -
                   std::ceil(ctx.outer_index->avg_entry_size_pages());
  if (M <= 0.0) return -1;
  const double m =
      spec.outer_subset.empty()
          ? static_cast<double>(ctx.outer->num_documents())
          : static_cast<double>(spec.outer_subset.size());
  const double SM = 4.0 * spec.delta *
                    static_cast<double>(ctx.inner->num_documents()) * m / P;
  return std::max<int64_t>(1, CeilPages(SM / M));
}

Result<JoinResult> VvmJoin::Run(const JoinContext& ctx,
                                const JoinSpec& spec) {
  TEXTJOIN_RETURN_IF_ERROR(ValidateJoinInputs(ctx, spec));
  if (ctx.inner_index == nullptr || ctx.outer_index == nullptr) {
    return Status::InvalidArgument(
        "VVM needs the inverted files on both collections");
  }
  int64_t passes = Passes(ctx, spec);
  if (passes < 0) {
    return Status::ResourceExhausted(
        "VVM: buffer cannot hold two inverted entries");
  }

  const std::vector<DocId> participating = ParticipatingOuterDocs(ctx, spec);
  // No point in more passes than participating documents.
  passes = std::min<int64_t>(
      passes, std::max<int64_t>(1, static_cast<int64_t>(participating.size())));
  // Map every outer document to its subcollection (pass index), -1 if it
  // does not participate. Subcollections are contiguous equal-count slices
  // of the participating documents.
  std::vector<int32_t> pass_of(
      static_cast<size_t>(ctx.outer->num_documents()), -1);
  const int64_t per_pass =
      CeilDiv(static_cast<int64_t>(participating.size()),
              std::max<int64_t>(passes, 1));
  for (size_t i = 0; i < participating.size(); ++i) {
    pass_of[participating[i]] =
        per_pass == 0 ? 0 : static_cast<int32_t>(i / per_pass);
  }

  const std::vector<char> inner_member = InnerMembership(ctx, spec);
  QueryStatsCollector* stats = ctx.stats;
  CpuStats* cpu = stats != nullptr ? stats->cpu() : nullptr;
  if (stats != nullptr) {
    stats->SetRootLabel("VVM");
    stats->SetCounter("passes", passes);
  }

  JoinResult result;
  result.reserve(participating.size());
  std::unordered_map<uint64_t, double> acc;

  for (int64_t pass = 0; pass < passes; ++pass) {
    TEXTJOIN_RETURN_IF_ERROR(GovernorCheckpoint(ctx, "VVM merge pass"));
    acc.clear();
    PhaseScope merge(stats, phase::kMergeScan);
    // Parallel scan of both inverted files, merging on term number.
    auto scan1 = ctx.inner_index->Scan();
    auto scan2 = ctx.outer_index->Scan();
    while (!scan1.Done() && !scan2.Done()) {
      TermId t1 = scan1.NextTerm();
      TermId t2 = scan2.NextTerm();
      if (t1 < t2) {
        if (cpu != nullptr) cpu->cells_decoded += scan1.NextCellCount();
        TEXTJOIN_RETURN_IF_ERROR(scan1.SkipEntry());
      } else if (t2 < t1) {
        if (cpu != nullptr) cpu->cells_decoded += scan2.NextCellCount();
        TEXTJOIN_RETURN_IF_ERROR(scan2.SkipEntry());
      } else {
        TEXTJOIN_ASSIGN_OR_RETURN(std::vector<ICell> e1, scan1.Next());
        TEXTJOIN_ASSIGN_OR_RETURN(std::vector<ICell> e2, scan2.Next());
        if (cpu != nullptr) {
          cpu->cells_decoded +=
              static_cast<int64_t>(e1.size() + e2.size());
        }
        const double factor = ctx.similarity->TermFactor(t1);
        for (const ICell& oc : e2) {
          if (pass_of[oc.doc] != pass) continue;
          const double w2 = static_cast<double>(oc.weight);
          const uint64_t base = static_cast<uint64_t>(oc.doc) << 32;
          if (cpu != nullptr) {
            cpu->accumulations += static_cast<int64_t>(e1.size());
          }
          for (const ICell& icell : e1) {
            if (!inner_member.empty() && !inner_member[icell.doc]) continue;
            acc[base | icell.doc] +=
                static_cast<double>(icell.weight) * w2 * factor;
          }
        }
      }
    }
    // The scan's one-pass property covers the whole file: drain whichever
    // side is left so the measured I/O equals I1 + I2 per pass, as the
    // cost model assumes.
    while (!scan1.Done()) {
      if (cpu != nullptr) cpu->cells_decoded += scan1.NextCellCount();
      TEXTJOIN_RETURN_IF_ERROR(scan1.SkipEntry());
    }
    while (!scan2.Done()) {
      if (cpu != nullptr) cpu->cells_decoded += scan2.NextCellCount();
      TEXTJOIN_RETURN_IF_ERROR(scan2.SkipEntry());
    }

    // Emit results for this pass's subcollection, ascending by document.
    TEXTJOIN_RETURN_IF_ERROR(GovernorCheckpoint(ctx, "VVM matrix partition"));
    const size_t lo = static_cast<size_t>(pass * per_pass);
    const size_t hi = std::min(participating.size(),
                               static_cast<size_t>((pass + 1) * per_pass));
    std::unordered_map<DocId, TopKAccumulator> heaps;
    for (size_t i = lo; i < hi; ++i) {
      heaps.emplace(participating[i], TopKAccumulator(spec.lambda));
    }
    if (cpu != nullptr) {
      cpu->heap_offers += static_cast<int64_t>(acc.size());
    }
    for (const auto& [key, a] : acc) {
      DocId outer_doc = static_cast<DocId>(key >> 32);
      DocId inner_doc = static_cast<DocId>(key & 0xFFFFFFFFu);
      heaps.at(outer_doc).Add(
          inner_doc, ctx.similarity->Finalize(a, inner_doc, outer_doc));
    }
    for (size_t i = lo; i < hi; ++i) {
      result.push_back(OuterMatches{participating[i],
                                    heaps.at(participating[i]).TakeSorted()});
    }
  }
  return result;
}

}  // namespace textjoin
