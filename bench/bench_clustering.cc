// Impact of clusters on HVNL (Section 7 further-work item 1, quantifying
// the Section 4.2 observation): take a topically mixed outer collection
// stored in arrival (shuffled) order, reorder it with leader clustering,
// and compare HVNL entry fetches and I/O cost under the same buffer
// budgets. The result sets are identical up to the document renumbering.

#include <cstdio>

#include "storage/disk_manager.h"
#include "cluster/leader_clustering.h"
#include "common/logging.h"
#include "common/random.h"
#include "index/inverted_file.h"
#include "join/hvnl.h"
#include "sim/synthetic.h"

namespace textjoin {
namespace {

constexpr int64_t kPage = 512;

// A topical corpus written in shuffled order: `topics` groups, each
// drawing from its own vocabulary slice.
DocumentCollection BuildShuffledTopical(SimulatedDisk* disk,
                                        const std::string& name,
                                        int64_t topics, int64_t per_topic,
                                        int64_t slice,
                                        int64_t terms_per_doc,
                                        uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<DCell>> docs;
  for (int64_t t = 0; t < topics; ++t) {
    for (int64_t d = 0; d < per_topic; ++d) {
      std::vector<char> used(static_cast<size_t>(slice), 0);
      std::vector<DCell> cells;
      while (static_cast<int64_t>(cells.size()) < terms_per_doc) {
        TermId local = static_cast<TermId>(
            rng.NextBounded(static_cast<uint64_t>(slice)));
        if (used[local]) continue;
        used[local] = 1;
        cells.push_back(DCell{static_cast<TermId>(t * slice + local),
                              static_cast<Weight>(1 + rng.NextBounded(3))});
      }
      std::sort(cells.begin(), cells.end(),
                [](const DCell& a, const DCell& b) { return a.term < b.term; });
      docs.push_back(std::move(cells));
    }
  }
  rng.Shuffle(&docs);
  CollectionBuilder builder(disk, name);
  for (auto& cells : docs) {
    TEXTJOIN_CHECK_OK(
        builder.AddDocument(Document::FromSortedCells(cells)).status());
  }
  auto col = builder.Finish();
  TEXTJOIN_CHECK_OK(col.status());
  return std::move(col).value();
}

struct Run {
  int64_t fetches;
  double cost;
};

Run RunHvnl(SimulatedDisk* disk, const DocumentCollection& inner,
            const InvertedFile& index, const DocumentCollection& outer,
            int64_t buffer) {
  auto simctx = SimilarityContext::Create(inner, outer, {});
  TEXTJOIN_CHECK_OK(simctx.status());
  JoinContext ctx;
  ctx.inner = &inner;
  ctx.outer = &outer;
  ctx.inner_index = &index;
  ctx.similarity = &simctx.value();
  ctx.sys = SystemParams{buffer, kPage, 5.0};
  JoinSpec spec;
  spec.lambda = 5;
  HvnlJoin join;
  disk->ResetStats();
  disk->ResetHeads();
  TEXTJOIN_CHECK_OK(join.Run(ctx, spec).status());
  return Run{join.run_stats().entry_fetches, disk->stats().Cost(5.0)};
}

}  // namespace
}  // namespace textjoin

int main() {
  using namespace textjoin;
  std::printf(
      "== Leader clustering as a physical design for HVNL ==\n"
      "Outer collection: 8 topics x 50 documents, written in shuffled "
      "order;\nclustered variant produced by ClusterCollection + "
      "ReorderByCluster.\n");

  SimulatedDisk disk(kPage);
  SyntheticSpec s1{900, 12.0, 8 * 40, 0.5, 0, 51};
  auto inner = GenerateCollection(&disk, "clu.inner", s1);
  TEXTJOIN_CHECK_OK(inner.status());
  auto index = InvertedFile::Build(&disk, "clu.inner.inv", *inner);
  TEXTJOIN_CHECK_OK(index.status());

  auto shuffled =
      BuildShuffledTopical(&disk, "clu.shuffled", 8, 50, 40, 10, 52);
  auto clustering = ClusterCollection(shuffled, ClusteringOptions{0.12, 0});
  TEXTJOIN_CHECK_OK(clustering.status());
  auto reordered =
      ReorderByCluster(&disk, "clu.ordered", shuffled, *clustering);
  TEXTJOIN_CHECK_OK(reordered.status());
  std::printf("leader clustering found %lld clusters over %lld documents\n",
              static_cast<long long>(clustering->num_clusters),
              static_cast<long long>(shuffled.num_documents()));

  std::printf("\n%-10s %18s %18s %14s %14s\n", "B(pages)",
              "fetches(shuffled)", "fetches(clustered)", "cost(shuf)",
              "cost(clust)");
  for (int64_t buffer : {24, 28, 36, 52, 90}) {
    Run shuf = RunHvnl(&disk, *inner, *index, shuffled, buffer);
    Run clus = RunHvnl(&disk, *inner, *index, reordered->collection, buffer);
    std::printf("%-10lld %18lld %18lld %14.0f %14.0f\n",
                static_cast<long long>(buffer),
                static_cast<long long>(shuf.fetches),
                static_cast<long long>(clus.fetches), shuf.cost, clus.cost);
  }
  return 0;
}
