#ifndef TEXTJOIN_SERVE_SHARED_SCAN_H_
#define TEXTJOIN_SERVE_SHARED_SCAN_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "index/inverted_file.h"
#include "storage/buffer_pool.h"
#include "text/types.h"

namespace textjoin {

// SharedScanRegistrar: concurrent queries over the same collection keep
// asking for the same hot posting lists. Within one scheduler round (one
// step of every active query), the first query to fetch a (file, term)
// entry pays the metered I/O and registers the decoded cells; every later
// query in the SAME round piggybacks on that scan for free — no page
// reads, no latency charge. Across rounds the registrar forgets (the
// decoded cells would otherwise amount to an unbounded second cache); the
// BufferPool still absorbs cross-round reuse at page granularity, under
// the tenants' quotas.
class SharedScanRegistrar {
 public:
  struct Fetched {
    // Decoded posting list, shared between the fetching query and its
    // piggybackers for the duration of the round.
    std::shared_ptr<const std::vector<ICell>> cells;
    // True when this call piggybacked on an earlier fetch of the round.
    bool shared = false;
    // Pages actually read from disk by this call (pool misses); 0 for a
    // shared or fully cached fetch. The scheduler charges simulated
    // latency per page read.
    int64_t pages_read = 0;
  };

  explicit SharedScanRegistrar(bool enabled) : enabled_(enabled) {}

  // Starts a new round: previously registered scans are forgotten.
  void BeginRound() { round_.clear(); }
  void EndRound() { round_.clear(); }

  // Drops scans registered so far THIS round. Called when a write lands
  // mid-round: registered cells belong to the pre-write epoch, and while
  // base posting files are immutable (so piggybacking on them stays
  // correct), a fetch admitted after the write must not be served another
  // snapshot's scan of a file the new epoch no longer references.
  void InvalidateRound() { round_.clear(); }

  // Fetches `term`'s posting list of `index` through `pool`, charging page
  // misses to `tenant` — or returns the cells another query fetched this
  // round. A term absent from the index yields an empty list.
  Result<Fetched> Fetch(const InvertedFile& index, TermId term,
                        BufferPool* pool, const std::string& tenant);

  bool enabled() const { return enabled_; }
  // Posting-list fetches that paid I/O vs piggybacked, over the
  // registrar's lifetime.
  int64_t total_fetches() const { return total_fetches_; }
  int64_t total_shared() const { return total_shared_; }

 private:
  using ScanKey = std::pair<FileId, TermId>;

  bool enabled_;
  std::map<ScanKey, std::shared_ptr<const std::vector<ICell>>> round_;
  int64_t total_fetches_ = 0;
  int64_t total_shared_ = 0;
};

}  // namespace textjoin

#endif  // TEXTJOIN_SERVE_SHARED_SCAN_H_
