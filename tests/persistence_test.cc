#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "storage/disk_manager.h"
#include "catalog/catalog.h"
#include "common/crc32.h"
#include "storage/coding.h"
#include "storage/page_stream.h"
#include "dynamic/dynamic_collection.h"
#include "join/hhnl.h"
#include "storage/snapshot.h"
#include "test_util.h"

namespace textjoin {
namespace {

using testing_util::MakeFixture;
using testing_util::RandomCollection;

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(Crc32Test, KnownVectors) {
  // Standard test vector: CRC-32("123456789") = 0xCBF43926.
  const char* s = "123456789";
  EXPECT_EQ(Crc32(reinterpret_cast<const uint8_t*>(s), 9), 0xCBF43926u);
  EXPECT_EQ(Crc32(nullptr, 0), 0u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  std::vector<uint8_t> data(1000);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i * 7);
  }
  uint32_t oneshot = Crc32(data.data(), data.size());
  uint32_t incremental = 0;
  incremental = Crc32Update(incremental, data.data(), 100);
  incremental = Crc32Update(incremental, data.data() + 100, 900);
  EXPECT_EQ(incremental, oneshot);
}

TEST(SnapshotTest, RoundTripPreservesFiles) {
  SimulatedDisk disk(128);
  auto col = RandomCollection(&disk, "col", 40, 6, 50, 11);
  auto inv = InvertedFile::Build(&disk, "col.inv", col);
  ASSERT_TRUE(inv.ok());

  std::string path = TempPath("roundtrip.tjsn");
  ASSERT_TRUE(SaveDiskSnapshot(disk, path).ok());

  auto loaded = LoadDiskSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  SimulatedDisk& disk2 = **loaded;
  EXPECT_EQ(disk2.page_size(), disk.page_size());
  ASSERT_EQ(disk2.file_count(), disk.file_count());
  for (FileId f = 0; f < disk.file_count(); ++f) {
    EXPECT_EQ(disk2.FileName(f), disk.FileName(f));
    EXPECT_EQ(disk2.raw_bytes(f), disk.raw_bytes(f));
  }
  std::remove(path.c_str());
}

TEST(SnapshotTest, DetectsCorruption) {
  SimulatedDisk disk(128);
  auto col = RandomCollection(&disk, "col", 10, 4, 30, 12);
  std::string path = TempPath("corrupt.tjsn");
  ASSERT_TRUE(SaveDiskSnapshot(disk, path).ok());

  // Flip one byte in the file body region.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-1, std::ios::end);
    char c;
    f.seekg(-1, std::ios::end);
    f.get(c);
    f.seekp(-1, std::ios::end);
    f.put(static_cast<char>(c ^ 0x5A));
  }
  auto loaded = LoadDiskSnapshot(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  std::remove(path.c_str());
}

// Snapshot v2 covers every byte with some checksum: flipping any single
// byte — header, file metadata, CRC trailers, payload — must produce a
// clean non-OK status, never a crash or a silently wrong load.
TEST(SnapshotTest, DetectsCorruptionInEveryByte) {
  SimulatedDisk disk(64);
  FileId f = disk.CreateFile("tiny");
  std::vector<uint8_t> page(64, 0xAB);
  ASSERT_TRUE(disk.AppendPage(f, page.data(), 64).ok());
  std::string path = TempPath("everybyte.tjsn");
  ASSERT_TRUE(SaveDiskSnapshot(disk, path).ok());

  std::vector<char> image;
  {
    std::ifstream in(path, std::ios::binary);
    image.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_GT(image.size(), 0u);
  for (size_t i = 0; i < image.size(); ++i) {
    std::vector<char> corrupted = image;
    corrupted[i] ^= 0x01;
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(corrupted.data(),
                static_cast<std::streamsize>(corrupted.size()));
    }
    auto loaded = LoadDiskSnapshot(path);
    EXPECT_FALSE(loaded.ok()) << "flip at byte " << i << " went undetected";
  }
  std::remove(path.c_str());
}

TEST(SnapshotTest, ZeroLengthFilesRoundTrip) {
  // Empty files are legal (a dynamic collection's fresh WAL is one until
  // the first mutation) and must survive a snapshot with name and order.
  SimulatedDisk disk(128);
  FileId a = disk.CreateFile("empty_a");
  FileId b = disk.CreateFile("data");
  FileId c = disk.CreateFile("empty_c");
  std::vector<uint8_t> page(128, 5);
  ASSERT_TRUE(disk.AppendPage(b, page.data(), 128).ok());

  std::string path = TempPath("zerolen.tjsn");
  ASSERT_TRUE(SaveDiskSnapshot(disk, path).ok());
  auto loaded = LoadDiskSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  SimulatedDisk& disk2 = **loaded;
  ASSERT_EQ(disk2.file_count(), 3);
  EXPECT_EQ(disk2.FileName(a), "empty_a");
  EXPECT_EQ(disk2.FileSizeInPages(a).value(), 0);
  EXPECT_EQ(disk2.FileSizeInPages(b).value(), 1);
  EXPECT_EQ(disk2.raw_bytes(b), disk.raw_bytes(b));
  EXPECT_EQ(disk2.FileName(c), "empty_c");
  EXPECT_EQ(disk2.FileSizeInPages(c).value(), 0);
  // An empty file is still appendable after the round trip.
  EXPECT_TRUE(disk2.AppendPage(a, page.data(), 128).ok());
  std::remove(path.c_str());
}

TEST(SnapshotTest, DuplicateFileNamesRoundTrip) {
  // Names are not unique on a SimulatedDisk (compaction generations reuse
  // none, but nothing enforces uniqueness globally). A snapshot must
  // preserve both files and keep FindFile's first-match answer stable.
  SimulatedDisk disk(64);
  FileId first = disk.CreateFile("same");
  FileId second = disk.CreateFile("same");
  std::vector<uint8_t> p1(64, 1), p2(64, 2);
  ASSERT_TRUE(disk.AppendPage(first, p1.data(), 64).ok());
  ASSERT_TRUE(disk.AppendPage(second, p2.data(), 64).ok());
  ASSERT_EQ(disk.FindFile("same").value(), first);

  std::string path = TempPath("dupnames.tjsn");
  ASSERT_TRUE(SaveDiskSnapshot(disk, path).ok());
  auto loaded = LoadDiskSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  SimulatedDisk& disk2 = **loaded;
  ASSERT_EQ(disk2.file_count(), 2);
  EXPECT_EQ(disk2.FindFile("same").value(), first);
  EXPECT_EQ(disk2.raw_bytes(first), disk.raw_bytes(first));
  EXPECT_EQ(disk2.raw_bytes(second), disk.raw_bytes(second));
  std::remove(path.c_str());
}

TEST(SnapshotTest, WalBearingImageRoundTrip) {
  // A snapshot taken while a dynamic collection has an un-compacted WAL
  // tail must reopen by replay: same live keys, same recovery report.
  SimulatedDisk disk(128);
  std::vector<Document> initial;
  for (int i = 0; i < 4; ++i) {
    initial.push_back(Document::FromSortedCells(
        {DCell{static_cast<TermId>(i), 2}, DCell{static_cast<TermId>(i + 4), 1}}));
  }
  auto dc = DynamicCollection::Create(&disk, "dyn", initial);
  ASSERT_TRUE(dc.ok()) << dc.status();
  ASSERT_TRUE((*dc)->Insert(Document::FromSortedCells({DCell{1, 3}})).ok());
  ASSERT_TRUE((*dc)->Delete(2).ok());
  const std::vector<DocKey> live = (*dc)->LiveKeys();
  const int64_t epoch = (*dc)->epoch();
  ASSERT_GT((*dc)->wal_bytes(), 0);

  std::string path = TempPath("walimage.tjsn");
  ASSERT_TRUE(SaveDiskSnapshot(disk, path).ok());
  auto loaded = LoadDiskSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  auto reopened = DynamicCollection::Open(loaded->get(), "dyn");
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ((*reopened)->LiveKeys(), live);
  EXPECT_EQ((*reopened)->epoch(), epoch);
  EXPECT_EQ((*reopened)->last_recovery().records_replayed, 2);
  EXPECT_EQ((*reopened)->last_recovery().tail_bytes_discarded, 0);
  std::remove(path.c_str());
}

TEST(SnapshotTest, RejectsGarbage) {
  std::string path = TempPath("garbage.tjsn");
  {
    std::ofstream f(path, std::ios::binary);
    f << "this is not a snapshot";
  }
  EXPECT_FALSE(LoadDiskSnapshot(path).ok());
  std::remove(path.c_str());
  EXPECT_EQ(LoadDiskSnapshot(TempPath("missing.tjsn")).status().code(),
            StatusCode::kNotFound);
}

TEST(CatalogTest, CollectionRoundTrip) {
  SimulatedDisk disk(128);
  auto col = RandomCollection(&disk, "col", 30, 6, 40, 13);
  ASSERT_TRUE(SaveCollectionCatalog(col, "col.cat").ok());

  auto reopened = OpenCollection(&disk, "col.cat");
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(reopened->num_documents(), col.num_documents());
  EXPECT_EQ(reopened->num_distinct_terms(), col.num_distinct_terms());
  EXPECT_EQ(reopened->total_cells(), col.total_cells());
  for (int64_t d = 0; d < col.num_documents(); ++d) {
    EXPECT_EQ(reopened->ReadDocument(static_cast<DocId>(d)).value(),
              col.ReadDocument(static_cast<DocId>(d)).value());
    EXPECT_DOUBLE_EQ(reopened->raw_norm(static_cast<DocId>(d)),
                     col.raw_norm(static_cast<DocId>(d)));
  }
  for (const auto& [term, df] : col.doc_freq_map()) {
    EXPECT_EQ(reopened->DocumentFrequency(term), df);
  }
}

TEST(CatalogTest, InvertedFileRoundTrip) {
  for (const PostingCompression comp : {PostingCompression::kDeltaVarint,
                                        PostingCompression::kGroupVarint}) {
    SimulatedDisk disk(128);
    auto col = RandomCollection(&disk, "col", 30, 6, 40, 14);
    auto inv = InvertedFile::Build(&disk, "col.inv", col,
                                   InvertedFile::BuildOptions{comp});
    ASSERT_TRUE(inv.ok());
    ASSERT_TRUE(SaveInvertedFileCatalog(*inv, "col.inv.cat").ok());

    auto reopened = OpenInvertedFile(&disk, "col.inv.cat");
    ASSERT_TRUE(reopened.ok()) << reopened.status();
    EXPECT_EQ(reopened->num_terms(), inv->num_terms());
    EXPECT_EQ(reopened->size_in_bytes(), inv->size_in_bytes());
    EXPECT_EQ(reopened->compression(), comp);
    for (const auto& e : inv->entries()) {
      EXPECT_EQ(reopened->FetchEntry(e.term).value(),
                inv->FetchEntry(e.term).value());
      EXPECT_EQ(reopened->btree().Lookup(e.term).value().address,
                inv->btree().Lookup(e.term).value().address);
    }
  }
}

// The catalog's compression byte is validated on open: a value past the
// last known PostingCompression must be rejected as kDataLoss, not cast
// into the enum and dispatched on. The record's CRC is recomputed after
// the patch so the corruption reaches the semantic check, not the
// checksum.
TEST(CatalogTest, UnknownCompressionByteRejected) {
  SimulatedDisk disk(128);
  auto col = RandomCollection(&disk, "col", 10, 4, 20, 15);
  auto inv = InvertedFile::Build(
      &disk, "col.inv", col,
      InvertedFile::BuildOptions{PostingCompression::kGroupVarint});
  ASSERT_TRUE(inv.ok());
  ASSERT_TRUE(SaveInvertedFileCatalog(*inv, "col.inv.cat").ok());

  // Record layout (catalog.cc WriteRecord): magic u32, payload length
  // u64, payload crc u32, payload. The payload opens with two fixed32-
  // length-prefixed strings (data file, btree file); the compression byte
  // follows.
  auto file = disk.FindFile("col.inv.cat");
  ASSERT_TRUE(file.ok());
  PageStreamReader reader(&disk, *file);
  std::vector<uint8_t> header;
  ASSERT_TRUE(reader.Read(0, 16, &header).ok());
  const uint64_t len = GetFixed64(header.data() + 4);
  std::vector<uint8_t> payload;
  ASSERT_TRUE(reader.Read(16, static_cast<int64_t>(len), &payload).ok());
  size_t at = 4 + GetFixed32(payload.data());
  at += 4 + GetFixed32(payload.data() + at);
  ASSERT_EQ(payload[at],
            static_cast<uint8_t>(PostingCompression::kGroupVarint));
  payload[at] = 0x7F;

  std::vector<uint8_t> patched_header;
  PutFixed32(&patched_header, GetFixed32(header.data()));
  PutFixed64(&patched_header, len);
  PutFixed32(&patched_header, Crc32(payload.data(), payload.size()));
  FileId patched = disk.CreateFile("col.bad.cat");
  PageStreamWriter writer(&disk, patched);
  writer.Append(patched_header);
  writer.Append(payload);
  ASSERT_TRUE(writer.Finish().ok());

  auto reopened = OpenInvertedFile(&disk, "col.bad.cat");
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(reopened.status().message().find("unknown compression code"),
            std::string::npos)
      << reopened.status();
}

// The full story: build, catalog, snapshot to a real file, reload in a
// fresh process-like state, reopen, and run a join with identical
// results.
TEST(CatalogTest, FullDatabaseReopenEndToEnd) {
  std::string path = TempPath("db.tjsn");
  JoinSpec spec;
  spec.lambda = 4;
  JoinResult expected;
  {
    SimulatedDisk disk(256);
    auto f = MakeFixture(&disk, RandomCollection(&disk, "c1", 40, 6, 50, 15),
                         RandomCollection(&disk, "c2", 25, 5, 50, 16));
    expected =
        testing_util::BruteForceJoin(f->inner, f->outer, f->simctx, spec);
    ASSERT_TRUE(SaveCollectionCatalog(f->inner, "c1.cat").ok());
    ASSERT_TRUE(SaveCollectionCatalog(f->outer, "c2.cat").ok());
    ASSERT_TRUE(SaveInvertedFileCatalog(f->inner_index, "c1.inv.cat").ok());
    ASSERT_TRUE(SaveDiskSnapshot(disk, path).ok());
  }

  auto disk2 = LoadDiskSnapshot(path);
  ASSERT_TRUE(disk2.ok());
  auto inner = OpenCollection(disk2->get(), "c1.cat");
  auto outer = OpenCollection(disk2->get(), "c2.cat");
  auto inner_index = OpenInvertedFile(disk2->get(), "c1.inv.cat");
  ASSERT_TRUE(inner.ok());
  ASSERT_TRUE(outer.ok());
  ASSERT_TRUE(inner_index.ok());

  auto simctx = SimilarityContext::Create(*inner, *outer, {});
  ASSERT_TRUE(simctx.ok());
  JoinContext ctx;
  ctx.inner = &inner.value();
  ctx.outer = &outer.value();
  ctx.inner_index = &inner_index.value();
  ctx.similarity = &simctx.value();
  ctx.sys = SystemParams{100, 256, 5.0};

  HhnlJoin join;
  auto result = join.Run(ctx, spec);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, expected);
  std::remove(path.c_str());
}

TEST(CatalogTest, OpenMissingCatalogFails) {
  SimulatedDisk disk(128);
  EXPECT_FALSE(OpenCollection(&disk, "nope.cat").ok());
}

TEST(CatalogTest, WrongMagicRejected) {
  SimulatedDisk disk(128);
  auto col = RandomCollection(&disk, "col", 5, 3, 20, 17);
  auto inv = InvertedFile::Build(&disk, "col.inv", col);
  ASSERT_TRUE(inv.ok());
  ASSERT_TRUE(SaveCollectionCatalog(col, "col.cat").ok());
  ASSERT_TRUE(SaveInvertedFileCatalog(*inv, "col.inv.cat").ok());
  // Opening a collection catalog as an inverted file (and vice versa)
  // must fail on the magic check.
  EXPECT_FALSE(OpenInvertedFile(&disk, "col.cat").ok());
  EXPECT_FALSE(OpenCollection(&disk, "col.inv.cat").ok());
}

}  // namespace
}  // namespace textjoin
