// Block-max traversal ablation on TREC-shaped workloads: blocks on/off x
// posting compression on/off at lambda=20 (the pruning bench's setting).
// "Blocks off" is the previous pruned executor — every other pruning layer
// (bound_skip, early_exit, adaptive_merge) stays on — so the reduction
// columns isolate exactly what the per-block maxima add on top of PR 5's
// exact top-lambda pruning:
//
//   steps   merge-step CPU cost: cell compares of the merge walks plus
//           similarity accumulations actually performed
//   total   steps + heap offers + cells decoded + bound checks — all the
//           work the run paid, including the extra refined bound checks
//   blk     posting blocks passed over undecoded (HVNL/VVM) or ruled out
//           by one summary probe in the galloping merge (HHNL)
//   trim    accumulator entries retired early by the block-refined bound
//
// Every cell of the ablation verifies the blocks-on result bit-identical
// (scores AND tie-breaks) to blocks-off, across raw, idf and cosine
// weighting, on both the fixed 5-byte i-cells and the delta+varint
// representation. Run with --smoke for a single small workload (CI).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/logging.h"
#include "index/inverted_file.h"
#include "join/hhnl.h"
#include "join/hvnl.h"
#include "join/pruning.h"
#include "join/vvm.h"
#include "obs/query_stats.h"
#include "sim/synthetic.h"
#include "storage/disk_manager.h"

namespace textjoin {
namespace {

constexpr int64_t kPage = 512;
constexpr int64_t kBufferPages = 1024;
constexpr int64_t kLambda = 20;

DocumentCollection Gen(SimulatedDisk* disk, const std::string& name,
                       int64_t docs, double terms, uint64_t seed,
                       int64_t vocab = 4000, double zipf = 1.0) {
  SyntheticSpec spec{docs, terms, vocab, zipf, 0, seed};
  auto c = GenerateCollection(disk, name, spec);
  TEXTJOIN_CHECK_OK(c.status());
  return std::move(c).value();
}

struct Measured {
  JoinResult result;
  CpuStats cpu;
};

Measured RunOnce(SimulatedDisk* disk, const DocumentCollection& inner,
                 const InvertedFile& index, const DocumentCollection& outer,
                 const InvertedFile& outer_index,
                 const SimilarityContext& simctx, TextJoinAlgorithm& algo,
                 bool blocks, int64_t buffer_pages) {
  JoinContext ctx;
  ctx.inner = &inner;
  ctx.outer = &outer;
  ctx.inner_index = &index;
  ctx.outer_index = &outer_index;
  ctx.similarity = &simctx;
  ctx.sys = SystemParams{buffer_pages, kPage, 5.0};
  QueryStatsCollector collector(disk);
  ctx.stats = &collector;
  JoinSpec spec;
  spec.lambda = kLambda;
  spec.pruning = PruningConfig{};  // all PR 5 layers on
  spec.pruning.block_skip = blocks;
  auto r = algo.Run(ctx, spec);
  TEXTJOIN_CHECK_OK(r.status());
  return Measured{std::move(r).value(), collector.Finish().root.cpu};
}

int64_t Steps(const CpuStats& c) { return c.cell_compares + c.accumulations; }

int64_t TotalWork(const CpuStats& c) {
  return c.cell_compares + c.accumulations + c.heap_offers + c.cells_decoded +
         c.bound_checks;
}

double Reduction(int64_t off, int64_t on) {
  if (off <= 0) return 0.0;
  return 100.0 * (1.0 - static_cast<double>(on) / static_cast<double>(off));
}

const char* SimName(const SimilarityConfig& sim) {
  if (sim.cosine_normalize) return "cosine";
  return sim.use_idf ? "idf" : "raw";
}

// Best merge-step reduction seen across all ablation cells, per algorithm
// label: the headline the bench must defend (>= 20% somewhere on the TREC
// profiles for the overall best).
double g_best_reduction = 0.0;

void RunWorkload(SimulatedDisk* disk, const std::string& key,
                 const char* title, const DocumentCollection& inner,
                 const DocumentCollection& outer,
                 PostingCompression compression,
                 int64_t buffer_pages = kBufferPages,
                 bool vvm_only = false) {
  InvertedFile::BuildOptions opts;
  opts.compression = compression;
  auto index = InvertedFile::Build(disk, key + ".idx", inner, opts);
  TEXTJOIN_CHECK_OK(index.status());
  auto outer_index = InvertedFile::Build(disk, key + ".oidx", outer, opts);
  TEXTJOIN_CHECK_OK(outer_index.status());

  const char* comp =
      compression == PostingCompression::kNone ? "5-byte" : "delta+varint";
  std::printf("\n== %s  [%s, lambda=%lld] ==\n", title, comp,
              static_cast<long long>(kLambda));
  std::printf("%-6s %-7s %12s %12s %7s %12s %12s %7s %8s %6s\n", "algo",
              "sim", "steps(off)", "steps(on)", "red%", "total(off)",
              "total(on)", "red%", "blk", "trim");

  for (const SimilarityConfig sim :
       {SimilarityConfig{false, false}, SimilarityConfig{false, true},
        SimilarityConfig{true, true}}) {
    auto simctx = SimilarityContext::Create(inner, outer, sim);
    TEXTJOIN_CHECK_OK(simctx.status());
    HhnlJoin hhnl;
    HvnlJoin hvnl;
    VvmJoin vvm;
    struct Row {
      const char* label;
      TextJoinAlgorithm* algo;
    };
    for (const Row& row :
         {Row{"hhnl", &hhnl}, Row{"hvnl", &hvnl}, Row{"vvm", &vvm}}) {
      if (vvm_only && row.algo != &vvm) continue;
      Measured off = RunOnce(disk, inner, *index, outer, *outer_index,
                             *simctx, *row.algo, /*blocks=*/false,
                             buffer_pages);
      Measured on = RunOnce(disk, inner, *index, outer, *outer_index,
                            *simctx, *row.algo, /*blocks=*/true,
                            buffer_pages);
      if (!(off.result == on.result)) {
        std::printf("FATAL: %s blocks-on result differs (%s, %s, %s)\n",
                    row.label, title, comp, SimName(sim));
        std::exit(1);
      }
      const double red = Reduction(Steps(off.cpu), Steps(on.cpu));
      g_best_reduction = std::max(g_best_reduction, red);
      std::printf(
          "%-6s %-7s %12lld %12lld %6.1f%% %12lld %12lld %6.1f%% %8lld "
          "%6lld\n",
          row.label, SimName(sim), static_cast<long long>(Steps(off.cpu)),
          static_cast<long long>(Steps(on.cpu)), red,
          static_cast<long long>(TotalWork(off.cpu)),
          static_cast<long long>(TotalWork(on.cpu)),
          Reduction(TotalWork(off.cpu), TotalWork(on.cpu)),
          static_cast<long long>(on.cpu.blocks_skipped),
          static_cast<long long>(on.cpu.accumulators_trimmed));
    }
  }
}

void Main(bool smoke) {
  SimulatedDisk disk(kPage);
  std::printf(
      "== Block-max traversal ablation (blocks on/off x compression, "
      "delta=0.1) ==\n"
      "blocks off = PR 5 pruned executor (bound_skip + early_exit +\n"
      "adaptive_merge); blocks on adds per-block maxima: block-granular\n"
      "decode, refined admission/trimming, summary galloping. Results\n"
      "verified bit-identical in every cell.\n");

  if (smoke) {
    DocumentCollection a = Gen(&disk, "sa", 120, 22.0, 21);
    DocumentCollection b = Gen(&disk, "sb", 120, 22.0, 22);
    RunWorkload(&disk, "s1", "smoke: DOE x DOE (22 terms/doc)", a, b,
                PostingCompression::kDeltaVarint);
    DocumentCollection fa = Gen(&disk, "fa", 30, 22.0, 23, 100, 0.5);
    DocumentCollection fb = Gen(&disk, "fb", 2000, 22.0, 24, 100, 0.5);
    RunWorkload(&disk, "s2", "smoke: DOE subset x DOE, 6-page buffer", fa, fb,
                PostingCompression::kDeltaVarint, /*buffer_pages=*/6,
                /*vvm_only=*/true);
    std::printf("\nsmoke OK (best merge-step reduction %.1f%%)\n",
                g_best_reduction);
    if (g_best_reduction < 20.0) {
      std::printf("FATAL: expected >= 20%% on the multi-pass workload\n");
      std::exit(1);
    }
    return;
  }

  // Per-document terms are the TREC averages / 4 (WSJ 329 -> 82,
  // FR 1017 -> 254, DOE 89 -> 22); document counts are bench-sized.
  DocumentCollection wsj1 = Gen(&disk, "wsj1", 240, 82.0, 11);
  DocumentCollection wsj2 = Gen(&disk, "wsj2", 240, 82.0, 12);
  DocumentCollection fr = Gen(&disk, "fr", 120, 254.0, 13);
  DocumentCollection doe = Gen(&disk, "doe", 400, 22.0, 14);
  auto fr2 = MergeDocuments(&disk, "fr2", fr, 2);
  TEXTJOIN_CHECK_OK(fr2.status());
  // DOE subset x DOE: a small C1 (30 documents) joined against a large C2
  // (2000 documents), 22 terms/doc both sides over a stopworded (flattened,
  // zipf 0.5) vocabulary. C2's entries are dense — several 64-cell blocks
  // each, so every block's document span covers only a slice of C2 — and a
  // 6-page buffer forces VVM through ~20 matrix passes. Pass-slice block
  // skipping then decodes and pass-filters each C2 block only in the
  // passes owning its span, instead of once per pass.
  DocumentCollection doesub = Gen(&disk, "doesub", 30, 22.0, 15, 100, 0.5);
  DocumentCollection doebig = Gen(&disk, "doebig", 2000, 22.0, 16, 100, 0.5);

  for (const PostingCompression compression :
       {PostingCompression::kNone, PostingCompression::kDeltaVarint}) {
    const char* tag =
        compression == PostingCompression::kNone ? "n" : "c";
    RunWorkload(&disk, std::string("w1") + tag,
                "WSJ x WSJ (82 terms/doc both sides)", wsj1, wsj2,
                compression);
    RunWorkload(&disk, std::string("w2") + tag,
                "FR x DOE (254 vs 22 terms/doc)", fr, doe, compression);
    RunWorkload(&disk, std::string("w3") + tag,
                "FR(x2) x DOE (508 vs 22 terms/doc, gallops)", *fr2, doe,
                compression);
    RunWorkload(&disk, std::string("w4") + tag,
                "DOE subset x DOE (VVM multi-pass, 8-page buffer)",
                doesub, doebig, compression, /*buffer_pages=*/8,
                /*vvm_only=*/true);
  }

  std::printf("\nbest merge-step reduction over blocks-off: %.1f%%\n",
              g_best_reduction);
  if (g_best_reduction < 20.0) {
    std::printf("FATAL: expected >= 20%% somewhere on the TREC profiles\n");
    std::exit(1);
  }
}

}  // namespace
}  // namespace textjoin

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  textjoin::Main(smoke);
  return 0;
}
