#include "index/btree.h"

#include <algorithm>

#include "common/logging.h"
#include "storage/coding.h"

namespace textjoin {

namespace {

// Number of cells that fit in one page after the 3-byte header.
int64_t LeafCapacity(int64_t page_size) {
  return (page_size - BPlusTree::kHeaderBytes) / BPlusTree::kLeafCellBytes;
}

int64_t InternalCapacity(int64_t page_size) {
  return (page_size - BPlusTree::kHeaderBytes) /
         BPlusTree::kInternalCellBytes;
}

struct InternalCell {
  TermId key;        // smallest term under the child subtree
  uint32_t child;    // child page number
};

void SerializeLeaf(const std::vector<BPlusTree::LeafCell>& cells,
                   std::vector<uint8_t>* page) {
  page->clear();
  page->push_back(0);  // level 0 = leaf
  PutFixed16(page, static_cast<uint16_t>(cells.size()));
  for (const auto& c : cells) {
    PutFixed24(page, c.term);
    PutFixed32(page, c.address);
    PutFixed16(page, c.doc_freq);
  }
}

void SerializeInternal(int level, const std::vector<InternalCell>& cells,
                       std::vector<uint8_t>* page) {
  page->clear();
  page->push_back(static_cast<uint8_t>(level));
  PutFixed16(page, static_cast<uint16_t>(cells.size()));
  for (const auto& c : cells) {
    PutFixed24(page, c.key);
    PutFixed32(page, c.child);
  }
}

}  // namespace

Result<BPlusTree> BPlusTree::BulkLoad(Disk* disk, std::string name,
                                      const std::vector<LeafCell>& cells) {
  for (size_t i = 1; i < cells.size(); ++i) {
    if (cells[i - 1].term >= cells[i].term) {
      return Status::InvalidArgument("bulk-load cells not strictly sorted");
    }
  }
  const int64_t page_size = disk->page_size();
  const int64_t leaf_cap = LeafCapacity(page_size);
  const int64_t internal_cap = InternalCapacity(page_size);
  if (leaf_cap < 2 || internal_cap < 2) {
    return Status::InvalidArgument("page size too small for B+tree nodes");
  }

  BPlusTree tree;
  tree.disk_ = disk;
  tree.file_ = disk->CreateFile(std::move(name));
  tree.num_terms_ = static_cast<int64_t>(cells.size());

  std::vector<uint8_t> page;
  // Level 0: pack leaves tightly.
  std::vector<InternalCell> level_refs;
  {
    int64_t i = 0;
    const int64_t n = static_cast<int64_t>(cells.size());
    while (i < n || (n == 0 && level_refs.empty())) {
      int64_t take = std::min(leaf_cap, n - i);
      std::vector<LeafCell> chunk(cells.begin() + i,
                                  cells.begin() + i + take);
      SerializeLeaf(chunk, &page);
      TEXTJOIN_ASSIGN_OR_RETURN(
          PageNumber pno,
          disk->AppendPage(tree.file_, page.data(),
                           static_cast<int64_t>(page.size())));
      level_refs.push_back(InternalCell{
          take > 0 ? chunk.front().term : 0, static_cast<uint32_t>(pno)});
      i += take;
      if (n == 0) break;  // empty tree: single empty leaf as root
    }
  }
  tree.leaf_pages_ = static_cast<int64_t>(level_refs.size());
  tree.height_ = 1;

  // Build internal levels until a single root remains.
  int level = 1;
  while (level_refs.size() > 1) {
    std::vector<InternalCell> next_refs;
    int64_t i = 0;
    const int64_t n = static_cast<int64_t>(level_refs.size());
    while (i < n) {
      int64_t take = std::min(internal_cap, n - i);
      std::vector<InternalCell> chunk(level_refs.begin() + i,
                                      level_refs.begin() + i + take);
      SerializeInternal(level, chunk, &page);
      TEXTJOIN_ASSIGN_OR_RETURN(
          PageNumber pno,
          disk->AppendPage(tree.file_, page.data(),
                           static_cast<int64_t>(page.size())));
      next_refs.push_back(
          InternalCell{chunk.front().key, static_cast<uint32_t>(pno)});
      i += take;
    }
    level_refs = std::move(next_refs);
    ++level;
    ++tree.height_;
  }
  tree.root_page_ = level_refs.empty() ? 0 : level_refs.front().child;
  return tree;
}

Result<BPlusTree::LeafCell> BPlusTree::Lookup(TermId term) const {
  if (disk_ == nullptr) return Status::FailedPrecondition("empty tree");
  std::vector<uint8_t> page(static_cast<size_t>(disk_->page_size()));
  PageNumber current = root_page_;
  for (;;) {
    TEXTJOIN_RETURN_IF_ERROR(disk_->ReadPage(file_, current, page.data()));
    const uint8_t level = page[0];
    const uint16_t count = GetFixed16(page.data() + 1);
    if (level == 0) {
      // Binary search the leaf cells.
      int64_t lo = 0, hi = count;
      while (lo < hi) {
        int64_t mid = (lo + hi) / 2;
        const uint8_t* p = page.data() + kHeaderBytes + mid * kLeafCellBytes;
        TermId t = GetFixed24(p);
        if (t < term) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      if (lo < count) {
        const uint8_t* p = page.data() + kHeaderBytes + lo * kLeafCellBytes;
        if (GetFixed24(p) == term) {
          return LeafCell{GetFixed24(p), GetFixed32(p + 3),
                          GetFixed16(p + 7)};
        }
      }
      return Status::NotFound("term " + std::to_string(term) +
                              " not in B+tree");
    }
    // Internal node: find the rightmost child whose key <= term.
    int64_t lo = 0, hi = count;
    while (lo < hi) {
      int64_t mid = (lo + hi) / 2;
      const uint8_t* p =
          page.data() + kHeaderBytes + mid * kInternalCellBytes;
      TermId t = GetFixed24(p);
      if (t <= term) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    int64_t child_idx = std::max<int64_t>(0, lo - 1);
    const uint8_t* p =
        page.data() + kHeaderBytes + child_idx * kInternalCellBytes;
    current = static_cast<PageNumber>(GetFixed32(p + 3));
  }
}

Result<std::vector<BPlusTree::LeafCell>> BPlusTree::LoadAllCells() const {
  if (disk_ == nullptr) return Status::FailedPrecondition("empty tree");
  std::vector<LeafCell> out;
  out.reserve(static_cast<size_t>(num_terms_));
  std::vector<uint8_t> page(static_cast<size_t>(disk_->page_size()));
  TEXTJOIN_ASSIGN_OR_RETURN(int64_t pages, disk_->FileSizeInPages(file_));
  for (PageNumber pno = 0; pno < pages; ++pno) {
    TEXTJOIN_RETURN_IF_ERROR(disk_->ReadPage(file_, pno, page.data()));
    if (page[0] != 0) continue;  // internal node
    const uint16_t count = GetFixed16(page.data() + 1);
    for (int64_t i = 0; i < count; ++i) {
      const uint8_t* p = page.data() + kHeaderBytes + i * kLeafCellBytes;
      out.push_back(
          LeafCell{GetFixed24(p), GetFixed32(p + 3), GetFixed16(p + 7)});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const LeafCell& a, const LeafCell& b) {
              return a.term < b.term;
            });
  return out;
}

BPlusTree BPlusTree::FromParts(Disk* disk, FileId file,
                               PageNumber root_page, int64_t leaf_pages,
                               int64_t num_terms, int height) {
  BPlusTree tree;
  tree.disk_ = disk;
  tree.file_ = file;
  tree.root_page_ = root_page;
  tree.leaf_pages_ = leaf_pages;
  tree.num_terms_ = num_terms;
  tree.height_ = height;
  return tree;
}

int64_t BPlusTree::size_in_pages() const {
  if (disk_ == nullptr) return 0;
  auto size = disk_->FileSizeInPages(file_);
  TEXTJOIN_CHECK(size.ok());
  return size.value();
}

ResidentTermDirectory::ResidentTermDirectory(
    std::vector<BPlusTree::LeafCell> cells, int64_t file_size_bytes)
    : cells_(std::move(cells)), file_size_bytes_(file_size_bytes) {
  for (size_t i = 1; i < cells_.size(); ++i) {
    TEXTJOIN_CHECK_LT(cells_[i - 1].term, cells_[i].term);
  }
}

int64_t ResidentTermDirectory::IndexOf(TermId term) const {
  auto it = std::lower_bound(
      cells_.begin(), cells_.end(), term,
      [](const BPlusTree::LeafCell& c, TermId t) { return c.term < t; });
  if (it == cells_.end() || it->term != term) return -1;
  return it - cells_.begin();
}

std::optional<BPlusTree::LeafCell> ResidentTermDirectory::Lookup(
    TermId term) const {
  int64_t i = IndexOf(term);
  if (i < 0) return std::nullopt;
  return cells_[static_cast<size_t>(i)];
}

std::optional<int64_t> ResidentTermDirectory::EntryLength(TermId term) const {
  int64_t i = IndexOf(term);
  if (i < 0) return std::nullopt;
  int64_t end = (static_cast<size_t>(i + 1) < cells_.size())
                    ? cells_[static_cast<size_t>(i + 1)].address
                    : file_size_bytes_;
  return end - cells_[static_cast<size_t>(i)].address;
}

}  // namespace textjoin
