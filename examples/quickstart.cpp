// Quickstart: build two tiny document collections from raw text, index
// them, and run a SIMILAR_TO(2) text join — letting the planner pick the
// algorithm — in about fifty lines of user code.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/example_quickstart

#include <cstdio>
#include <string>
#include <vector>

#include "storage/disk_manager.h"
#include "common/logging.h"
#include "index/inverted_file.h"
#include "planner/planner.h"
#include "sim/synthetic.h"
#include "text/tokenizer.h"

using namespace textjoin;

int main() {
  // Everything lives on a simulated disk that meters page I/O.
  SimulatedDisk disk(4096);
  Vocabulary vocab;  // the shared term -> number mapping
  Tokenizer tokenizer;

  // Collection 1: a few short "documents".
  std::vector<std::string> library = {
      "the quick brown fox jumps over the lazy dog",
      "relational query optimization with cost models",
      "inverted files accelerate text retrieval",
      "brown bears fish in quick mountain rivers",
      "join processing for textual attributes in multidatabases",
  };
  CollectionBuilder b1(&disk, "library");
  for (const auto& text : library) {
    auto doc = tokenizer.MakeDocument(text, &vocab);
    TEXTJOIN_CHECK_OK(doc.status());
    TEXTJOIN_CHECK_OK(b1.AddDocument(*doc).status());
  }
  auto inner = std::move(b1.Finish()).value();

  // Collection 2: queries we want to match against the library.
  std::vector<std::string> queries = {
      "processing joins between textual attributes",
      "quick foxes and brown bears",
  };
  CollectionBuilder b2(&disk, "queries");
  for (const auto& text : queries) {
    auto doc = tokenizer.MakeDocument(text, &vocab);
    TEXTJOIN_CHECK_OK(doc.status());
    TEXTJOIN_CHECK_OK(b2.AddDocument(*doc).status());
  }
  auto outer = std::move(b2.Finish()).value();

  // Inverted files + B+trees enable HVNL and VVM; HHNL needs none.
  auto inner_index = InvertedFile::Build(&disk, "library.inv", inner);
  auto outer_index = InvertedFile::Build(&disk, "queries.inv", outer);
  TEXTJOIN_CHECK_OK(inner_index.status());
  TEXTJOIN_CHECK_OK(outer_index.status());

  auto simctx = SimilarityContext::Create(inner, outer, {});
  TEXTJOIN_CHECK_OK(simctx.status());

  JoinContext ctx;
  ctx.inner = &inner;
  ctx.outer = &outer;
  ctx.inner_index = &inner_index.value();
  ctx.outer_index = &outer_index.value();
  ctx.similarity = &simctx.value();
  ctx.sys = SystemParams{/*buffer_pages=*/100, /*page_size=*/4096,
                         /*alpha=*/5.0};

  JoinSpec spec;
  spec.lambda = 2;  // the two most similar library documents per query

  disk.ResetStats();
  JoinPlanner planner;
  PlanChoice plan;
  auto result = planner.Execute(ctx, spec, &plan);
  TEXTJOIN_CHECK_OK(result.status());

  std::printf("%s\n\n", plan.explanation.c_str());
  for (const OuterMatches& om : *result) {
    std::printf("query : %s\n", queries[om.outer_doc].c_str());
    for (const Match& m : om.matches) {
      std::printf("  %5.1f  %s\n", m.score, library[m.doc].c_str());
    }
  }
  std::printf("\njoin I/O: %s\n", disk.stats().ToString().c_str());
  return 0;
}
