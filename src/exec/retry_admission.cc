#include "exec/retry_admission.h"

#include <algorithm>

namespace textjoin {

double RetryAdmission::BackoffMs(int64_t attempt) const {
  double backoff = policy_.initial_backoff_ms;
  for (int64_t i = 1; i < attempt; ++i) {
    backoff *= policy_.multiplier;
    if (backoff >= policy_.max_backoff_ms) break;
  }
  return std::min(backoff, policy_.max_backoff_ms);
}

}  // namespace textjoin
