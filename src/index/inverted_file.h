#ifndef TEXTJOIN_INDEX_INVERTED_FILE_H_
#define TEXTJOIN_INDEX_INVERTED_FILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "index/btree.h"
#include "storage/disk.h"
#include "storage/page_stream.h"
#include "text/collection.h"
#include "text/types.h"

namespace textjoin {

// The inverted file on a document collection: for every distinct term, a
// list of i-cells (document number, occurrences) sorted by ascending
// document number. Entries are packed tightly in consecutive storage
// locations in ascending term order (Section 3), so:
//   * VVM can scan the whole file once, sequentially, in term order;
//   * HVNL can fetch a single term's entry with a positioned read whose
//     location comes from the B+tree term directory.
// On-disk representation of posting lists.
enum class PostingCompression {
  // The paper's fixed 5-byte i-cells.
  kNone,
  // Delta-encoded document numbers + weights, both LEB128 varints — the
  // classic IR compression. Entries shrink to ~2-3 bytes per cell, which
  // shrinks I and J in the cost model's terms (bench_compression
  // quantifies the effect on HVNL and VVM).
  kDeltaVarint,
};

class InvertedFile {
 public:
  // Per-term catalog row (in-memory metadata mirroring the B+tree leaves).
  struct EntryMeta {
    TermId term = 0;
    int64_t offset_bytes = 0;
    int64_t cell_count = 0;   // == document frequency of the term
    int64_t byte_length = 0;  // encoded length on disk
    // Largest cell weight in the list — an upper bound on any document's
    // weight for this term, used by the exact top-lambda pruning layer
    // (join/pruning.h) to bound a term's score contribution without
    // fetching the entry.
    int32_t max_weight = 0;
  };

  struct BuildOptions {
    PostingCompression compression = PostingCompression::kNone;
  };

  InvertedFile(InvertedFile&&) = default;
  InvertedFile& operator=(InvertedFile&&) = default;
  InvertedFile(const InvertedFile&) = delete;
  InvertedFile& operator=(const InvertedFile&) = delete;

  // Builds the inverted file and its B+tree by scanning `collection`.
  // The scan and the writes are metered; experiment drivers reset the
  // disk's I/O stats after setup.
  static Result<InvertedFile> Build(Disk* disk, std::string name,
                                    const DocumentCollection& collection);
  static Result<InvertedFile> Build(Disk* disk, std::string name,
                                    const DocumentCollection& collection,
                                    const BuildOptions& options);

  PostingCompression compression() const { return compression_; }

  const std::string& name() const { return name_; }
  Disk* disk() const { return disk_; }
  FileId file() const { return file_; }
  const BPlusTree& btree() const { return btree_; }

  // T: number of distinct terms (inverted file entries).
  int64_t num_terms() const { return static_cast<int64_t>(entries_.size()); }

  // I: size of the inverted file in pages (tightly packed).
  int64_t size_in_pages() const;

  int64_t size_in_bytes() const { return total_bytes_; }

  // J: average size of an inverted file entry in pages.
  double avg_entry_size_pages() const;

  // Unmetered catalog access (terms ascending).
  const std::vector<EntryMeta>& entries() const { return entries_; }

  // Unmetered point metadata: index into entries() or -1.
  int64_t FindEntry(TermId term) const;

  // Fetches one entry with metered I/O: the first page of the entry is a
  // positioned (random) read, subsequent pages sequential.
  Result<std::vector<ICell>> FetchEntry(TermId term) const;

  // Pages touched when entry `index` is read in isolation: the paper's
  // ceil(J) for an average entry, computed exactly from the entry's offset
  // and length.
  int64_t EntryPageSpan(int64_t index) const;

  // Sequential scanner over all entries in term order (for VVM). Consuming
  // the whole file reads each page exactly once.
  class Scanner {
   public:
    explicit Scanner(const InvertedFile* file);

    bool Done() const {
      return next_ >= static_cast<int64_t>(file_->entries_.size());
    }

    // Peeks at the term of the next entry (unmetered catalog access).
    TermId NextTerm() const { return file_->entries_[next_].term; }

    // Peeks at the next entry's i-cell count (unmetered catalog access).
    int64_t NextCellCount() const { return file_->entries_[next_].cell_count; }

    // Reads the next entry and advances.
    Result<std::vector<ICell>> Next();

    // Skips the next entry, still paying the I/O for pages it occupies
    // exclusively (the scan must pass over them). Implemented as a read
    // whose result is discarded — the dominant cost is I/O, which is what
    // the simulation meters.
    Status SkipEntry();

   private:
    const InvertedFile* file_;
    SequentialByteReader reader_;
    int64_t next_ = 0;
  };

  Scanner Scan() const { return Scanner(this); }

  // Reassembles an inverted file from catalog parts (catalog reopen).
  static InvertedFile FromParts(Disk* disk, FileId file,
                                std::string name, BPlusTree btree,
                                std::vector<EntryMeta> entries,
                                int64_t total_bytes,
                                PostingCompression compression);

 private:
  InvertedFile() = default;

  Disk* disk_ = nullptr;
  FileId file_ = kInvalidFileId;
  std::string name_;
  BPlusTree btree_;
  std::vector<EntryMeta> entries_;
  int64_t total_bytes_ = 0;
  PostingCompression compression_ = PostingCompression::kNone;
};

// Serializes i-cells to the 5-byte on-disk format.
void EncodeICells(const std::vector<ICell>& cells, std::vector<uint8_t>* out);

// Parses `count` i-cells from `bytes`.
std::vector<ICell> DecodeICells(const uint8_t* bytes, int64_t count);

// Serializes one posting list in the chosen representation.
void EncodePostings(const std::vector<ICell>& cells,
                    PostingCompression compression,
                    std::vector<uint8_t>* out);

// Parses `count` i-cells of a posting list encoded as `compression`.
std::vector<ICell> DecodePostings(const uint8_t* bytes, int64_t count,
                                  PostingCompression compression);

}  // namespace textjoin

#endif  // TEXTJOIN_INDEX_INVERTED_FILE_H_
