#include <gtest/gtest.h>

#include <cmath>

#include "storage/disk_manager.h"
#include "join/similarity.h"
#include "test_util.h"

namespace textjoin {
namespace {

using testing_util::BuildCollection;

class SimilarityTest : public ::testing::Test {
 protected:
  SimilarityTest()
      : disk_(4096),
        inner_(BuildCollection(&disk_, "c1",
                               {{{1, 2}, {2, 1}}, {{2, 3}, {3, 1}}})),
        outer_(BuildCollection(&disk_, "c2", {{{1, 1}, {2, 2}}, {{3, 5}}})) {}

  SimulatedDisk disk_;
  DocumentCollection inner_;
  DocumentCollection outer_;
};

TEST_F(SimilarityTest, RawCountsMatchPaperDefinition) {
  auto ctx = SimilarityContext::Create(inner_, outer_, {});
  ASSERT_TRUE(ctx.ok());
  Document a = *inner_.ReadDocument(0);
  Document b = *outer_.ReadDocument(0);
  // Shared terms 1 and 2: 2*1 + 1*2 = 4.
  EXPECT_DOUBLE_EQ(WeightedDot(a, b, *ctx), 4.0);
  EXPECT_DOUBLE_EQ(static_cast<double>(DotSimilarity(a, b)),
                   WeightedDot(a, b, *ctx));
  // Finalize is identity without cosine.
  EXPECT_DOUBLE_EQ(ctx->Finalize(4.0, 0, 0), 4.0);
}

TEST_F(SimilarityTest, CosineDividesByNorms) {
  SimilarityConfig config;
  config.cosine_normalize = true;
  auto ctx = SimilarityContext::Create(inner_, outer_, config);
  ASSERT_TRUE(ctx.ok());
  double raw = 4.0;
  double expected = raw / (std::sqrt(5.0) * std::sqrt(5.0));
  EXPECT_DOUBLE_EQ(ctx->Finalize(raw, 0, 0), expected);
  // Self-similarity of a document with itself is 1 under cosine.
  Document a = *inner_.ReadDocument(0);
  double self = WeightedDot(a, a, *ctx);
  EXPECT_NEAR(self / (a.Norm() * a.Norm()), 1.0, 1e-12);
}

TEST_F(SimilarityTest, IdfDownweightsCommonTerms) {
  SimilarityConfig config;
  config.use_idf = true;
  auto ctx = SimilarityContext::Create(inner_, outer_, config);
  ASSERT_TRUE(ctx.ok());
  // Term 2 occurs in 3 of 4 documents; term 3 in 2 of 4. The rarer term
  // gets the larger weight.
  EXPECT_GT(ctx->idf.Squared(3), ctx->idf.Squared(2));
  // A term in no document would get weight 0 via df=0 guard.
  EXPECT_DOUBLE_EQ(ctx->idf.Squared(999), 0.0);
}

TEST_F(SimilarityTest, IdfDisabledIsUnitWeight) {
  auto ctx = SimilarityContext::Create(inner_, outer_, {});
  ASSERT_TRUE(ctx.ok());
  EXPECT_DOUBLE_EQ(ctx->idf.Squared(1), 1.0);
  EXPECT_DOUBLE_EQ(ctx->idf.Squared(999), 1.0);
}

TEST_F(SimilarityTest, IdfWeightedDotUsesFactors) {
  SimilarityConfig config;
  config.use_idf = true;
  auto ctx = SimilarityContext::Create(inner_, outer_, config);
  ASSERT_TRUE(ctx.ok());
  Document a = *inner_.ReadDocument(0);
  Document b = *outer_.ReadDocument(0);
  double expected = 2.0 * 1.0 * ctx->idf.Squared(1) +
                    1.0 * 2.0 * ctx->idf.Squared(2);
  EXPECT_DOUBLE_EQ(WeightedDot(a, b, *ctx), expected);
}

TEST_F(SimilarityTest, CosineIdfNormsComputedByScan) {
  SimilarityConfig config;
  config.cosine_normalize = true;
  config.use_idf = true;
  auto ctx = SimilarityContext::Create(inner_, outer_, config);
  ASSERT_TRUE(ctx.ok());
  // Norm of inner doc 0 under idf weights.
  double expected = std::sqrt(4.0 * ctx->idf.Squared(1) +
                              1.0 * ctx->idf.Squared(2));
  EXPECT_NEAR(ctx->inner_norms.of(0), expected, 1e-12);
}

TEST_F(SimilarityTest, RawCosineNormsFromCatalog) {
  SimilarityConfig config;
  config.cosine_normalize = true;
  auto ctx = SimilarityContext::Create(inner_, outer_, config);
  ASSERT_TRUE(ctx.ok());
  EXPECT_DOUBLE_EQ(ctx->inner_norms.of(0), inner_.raw_norm(0));
  EXPECT_DOUBLE_EQ(ctx->outer_norms.of(1), outer_.raw_norm(1));
}

}  // namespace
}  // namespace textjoin
