#ifndef TEXTJOIN_INDEX_POSTING_CURSOR_H_
#define TEXTJOIN_INDEX_POSTING_CURSOR_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "index/inverted_file.h"
#include "kernel/aligned.h"
#include "text/types.h"

namespace textjoin {

// An inverted entry held as raw encoded bytes with block-granular lazy
// decode. The I/O to fetch the byte span is identical to eagerly decoding
// the whole entry (the span is read once, page by page); what becomes lazy
// is only the CPU-side decode, so a traversal that skips a block via its
// block-max summary never pays to decode it. Backs both the HVNL entry
// cache and VVM's merge scan, plus the PostingCursor below.
//
// The EntryMeta pointer must outlive this object; it points into
// InvertedFile::entries(), whose storage is stable.
class BlockLazyEntry {
 public:
  BlockLazyEntry() = default;
  BlockLazyEntry(const InvertedFile::EntryMeta* meta,
                 PostingCompression compression, std::vector<uint8_t> raw);

  const InvertedFile::EntryMeta& meta() const { return *meta_; }
  int64_t cell_count() const { return meta_->cell_count; }
  int64_t num_blocks() const {
    return static_cast<int64_t>(meta_->blocks.size());
  }
  const InvertedFile::PostingBlockMeta& block(int64_t b) const {
    return meta_->blocks[static_cast<size_t>(b)];
  }

  // First cell index of block `b` (blocks tile the list in
  // kPostingBlockCells strides).
  static int64_t BlockCellBegin(int64_t b) { return b * kPostingBlockCells; }

  // Pointer to the decoded cells of block `b`, decoding it on first use.
  // `newly_decoded` (may be null) receives the number of cells decoded by
  // THIS call — 0 on a repeat visit — so callers can meter cells_decoded.
  Result<const ICell*> Block(int64_t b, int64_t* newly_decoded);

  // Decodes every remaining block and returns the full cell vector.
  Result<const kernel::ICellBuffer*> All(int64_t* newly_decoded);

 private:
  const InvertedFile::EntryMeta* meta_ = nullptr;
  PostingCompression compression_ = PostingCompression::kNone;
  std::vector<uint8_t> raw_;
  // Sized once to cell_count at construction (32-byte aligned for the
  // SIMD kernels) and filled in place per block — block decode after
  // construction never allocates.
  kernel::ICellBuffer cells_;
  std::vector<char> decoded_;     // per-block flags
  int64_t blocks_decoded_ = 0;
};

// Forward iteration over one entry's posting list with block-granular
// skipping, backed by a metered positioned PageStream read of the entry's
// byte span. NextGEQ(target) advances to the first cell with document
// number >= target without decoding the blocks it jumps over — the
// block-max WAND traversal primitive.
class PostingCursor {
 public:
  // `entry_index` indexes InvertedFile::entries().
  PostingCursor(const InvertedFile* file, int64_t entry_index);

  // Reads the entry's bytes (metered: first page positioned, rest
  // sequential — same cost as InvertedFile::FetchEntry).
  Status Init();

  bool done() const { return at_ >= entry_->cell_count; }
  const ICell& current() const { return *current_; }

  // Block summary of the cursor's current block.
  int64_t current_block() const { return at_ / kPostingBlockCells; }
  float current_block_max() const {
    return entry_->blocks[static_cast<size_t>(current_block())].max_weight;
  }

  Status Next();

  // Advances to the first cell whose document number is >= target (no-op
  // when already there). Whole blocks with last_doc < target are skipped
  // undecoded.
  Status NextGEQ(DocId target);

  // Positions the cursor at the first cell of block `b` (must be >= the
  // current block; the cursor only moves forward).
  Status SkipToBlock(int64_t b);

  // Traversal telemetry.
  int64_t blocks_skipped() const { return blocks_skipped_; }
  int64_t cells_decoded() const { return cells_decoded_; }

 private:
  Status LoadCurrent();

  const InvertedFile* file_;
  const InvertedFile::EntryMeta* entry_;
  BlockLazyEntry lazy_;
  int64_t at_ = 0;                 // cell index
  const ICell* current_ = nullptr;
  int64_t last_decoded_block_ = -1;
  int64_t blocks_skipped_ = 0;
  int64_t cells_decoded_ = 0;
};

}  // namespace textjoin

#endif  // TEXTJOIN_INDEX_POSTING_CURSOR_H_
