// Overhead of the fault-tolerance layer: CRC32 verification on the clean
// read path, retry + re-read recovery cost as the device degrades, and
// dynamic-collection recovery time (WAL replay ms vs log length).
//
// Run with --smoke for a single replay measurement plus a sanity check
// (CI): recovery must replay every record and land on the right contents.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>

#include "dynamic/dynamic_collection.h"
#include "storage/disk_manager.h"
#include "common/logging.h"
#include "common/random.h"
#include "storage/reliable_disk.h"
#include "text/document.h"

namespace textjoin {
namespace {

constexpr int64_t kPageSize = 4096;
constexpr int64_t kPages = 256;

void LoadDisk(SimulatedDisk* disk) {
  FileId f = disk->CreateFile("data");
  std::vector<uint8_t> page(kPageSize);
  for (int64_t p = 0; p < kPages; ++p) {
    for (size_t i = 0; i < page.size(); ++i) {
      page[i] = static_cast<uint8_t>(p + i);
    }
    TEXTJOIN_CHECK_OK(disk->AppendPage(f, page.data(), kPageSize).status());
  }
}

// Baseline: the bare simulated device.
void BM_ReadPage_Raw(benchmark::State& state) {
  SimulatedDisk disk(kPageSize);
  LoadDisk(&disk);
  std::vector<uint8_t> out(kPageSize);
  int64_t p = 0;
  for (auto _ : state) {
    TEXTJOIN_CHECK_OK(disk.ReadPage(0, p, out.data()));
    p = (p + 1) % kPages;
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * kPageSize);
}
BENCHMARK(BM_ReadPage_Raw);

// The verified read path on a healthy device: the delta against
// BM_ReadPage_Raw is the pure CRC32 cost.
void BM_ReadPage_Verified(benchmark::State& state) {
  SimulatedDisk base(kPageSize);
  LoadDisk(&base);
  ReliableDisk disk(&base);
  TEXTJOIN_CHECK_OK(disk.SealExistingFiles());
  std::vector<uint8_t> out(kPageSize);
  int64_t p = 0;
  for (auto _ : state) {
    TEXTJOIN_CHECK_OK(disk.ReadPage(0, p, out.data()));
    p = (p + 1) % kPages;
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * kPageSize);
}
BENCHMARK(BM_ReadPage_Verified);

// Recovery cost as the device degrades: transient errors and transfer
// corruption both at rate/1000, every fault masked by retry. The counter
// report shows how much re-read work the rate buys.
void BM_ReadPage_UnderFaults(benchmark::State& state) {
  SimulatedDisk base(kPageSize);
  LoadDisk(&base);
  ReliableDisk disk(&base);
  TEXTJOIN_CHECK_OK(disk.SealExistingFiles());
  FaultSchedule schedule;
  schedule.seed = 42;
  schedule.transient_rate = state.range(0) / 1000.0;
  schedule.corruption_rate = state.range(0) / 1000.0;
  base.set_fault_schedule(schedule);
  std::vector<uint8_t> out(kPageSize);
  int64_t p = 0;
  int64_t failed = 0;
  for (auto _ : state) {
    if (!disk.ReadPage(0, p, out.data()).ok()) ++failed;
    p = (p + 1) % kPages;
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * kPageSize);
  const RetryStats& rs = disk.retry_stats();
  state.counters["retries"] = static_cast<double>(rs.retries);
  state.counters["recovered"] = static_cast<double>(rs.recovered_reads);
  state.counters["gave_up"] = static_cast<double>(failed);
  state.counters["backoff_ms"] = rs.backoff_ms;
}
BENCHMARK(BM_ReadPage_UnderFaults)->Arg(1)->Arg(10)->Arg(50);

// Builds a dynamic collection whose WAL holds `mutations` records
// (inserts with an occasional delete), ready to be reopened.
std::unique_ptr<SimulatedDisk> BuildWalImage(int64_t mutations) {
  auto disk = std::make_unique<SimulatedDisk>(kPageSize);
  Rng rng(7);
  std::vector<Document> initial;
  for (int i = 0; i < 8; ++i) {
    initial.push_back(Document::FromSortedCells(
        {DCell{static_cast<TermId>(i), 2},
         DCell{static_cast<TermId>(i + 8), 1}}));
  }
  auto dc = DynamicCollection::Create(disk.get(), "dyn", initial);
  TEXTJOIN_CHECK_OK(dc.status());
  DocKey last = 0;
  for (int64_t m = 0; m < mutations; ++m) {
    if (m % 8 == 7 && last != 0) {
      TEXTJOIN_CHECK_OK((*dc)->Delete(last));
      last = 0;
    } else {
      std::vector<DCell> cells;
      TermId t = static_cast<TermId>(rng.NextBounded(500));
      for (int j = 0; j < 6; ++j, t += 1 + static_cast<TermId>(j)) {
        cells.push_back(DCell{t, static_cast<Weight>(1 + rng.NextBounded(4))});
      }
      auto key = (*dc)->Insert(Document::FromSortedCells(cells));
      TEXTJOIN_CHECK_OK(key.status());
      last = *key;
    }
  }
  return disk;
}

// Recovery time as a function of WAL length: reopen replays every record
// (checksum verification + in-memory apply) over the manifest generation.
void BM_WalReplay(benchmark::State& state) {
  auto disk = BuildWalImage(state.range(0));
  int64_t replayed = 0;
  for (auto _ : state) {
    auto dc = DynamicCollection::Open(disk.get(), "dyn");
    TEXTJOIN_CHECK_OK(dc.status());
    replayed = (*dc)->last_recovery().records_replayed;
    benchmark::DoNotOptimize(dc);
  }
  TEXTJOIN_CHECK(replayed == state.range(0));
  state.counters["records"] = static_cast<double>(replayed);
}
BENCHMARK(BM_WalReplay)->Arg(64)->Arg(256)->Arg(1024);

// CI smoke: one replay measurement with the result checked.
int Smoke() {
  constexpr int64_t kMutations = 256;
  auto disk = BuildWalImage(kMutations);
  const auto t0 = std::chrono::steady_clock::now();
  auto dc = DynamicCollection::Open(disk.get(), "dyn");
  const auto t1 = std::chrono::steady_clock::now();
  if (!dc.ok()) {
    std::printf("FATAL: reopen failed: %s\n", dc.status().ToString().c_str());
    return 1;
  }
  const double ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  if ((*dc)->last_recovery().records_replayed != kMutations ||
      (*dc)->last_recovery().tail_bytes_discarded != 0) {
    std::printf("FATAL: expected %lld records replayed cleanly, got %lld "
                "(+%lld torn bytes)\n",
                static_cast<long long>(kMutations),
                static_cast<long long>((*dc)->last_recovery().records_replayed),
                static_cast<long long>(
                    (*dc)->last_recovery().tail_bytes_discarded));
    return 1;
  }
  std::printf("smoke OK: replayed %lld WAL records in %.2f ms "
              "(%lld live docs, epoch %lld)\n",
              static_cast<long long>(kMutations), ms,
              static_cast<long long>((*dc)->num_live_documents()),
              static_cast<long long>((*dc)->epoch()));
  return 0;
}

}  // namespace
}  // namespace textjoin

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return textjoin::Smoke();
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
