// SSE4.2 kernel variants. This translation unit is compiled with
// -msse4.2 (see src/kernel/CMakeLists.txt) and only when the compiler
// accepts the flag; runtime CPU detection in dispatch.cc decides whether
// the table is ever used. Everything here must be bit-identical to the
// scalar table: the vector loops only batch work whose per-element result
// is exact (byte shuffles, integer compares, independent IEEE multiplies)
// and leave every order-sensitive reduction to the same sequential code
// the scalar table runs.

#ifdef TEXTJOIN_HAVE_SSE42

#include <nmmintrin.h>

#include "kernel/kernels.h"
#include "kernel/kernels_common.h"

namespace textjoin {
namespace kernel {

namespace {

Status GvDecodeSse42(const uint8_t* bytes, int64_t byte_length, int64_t count,
                     ICell* out, int64_t* consumed) {
  if (count <= 0) {
    if (consumed != nullptr) *consumed = 0;
    return count == 0 ? Status::OK()
                      : Status::DataLoss("negative posting block cell count");
  }
  const int64_t num_values = 2 * count;
  const int64_t ctrl_bytes = GvControlBytes(count);
  if (ctrl_bytes > byte_length) {
    return Status::DataLoss("group-varint control region overruns block");
  }
  const uint8_t* limit = bytes + byte_length;
  const GvTables& t = GetGvTables();
  internal::GvCursor cur;
  cur.p = bytes + ctrl_bytes;

  // Vector loop over full groups: one 16-byte load always covers a
  // group's payload (at most 16 bytes), so the guard `p + 16 <= limit`
  // both keeps the load in bounds and proves the group's own bytes are
  // present — no per-value bounds checks needed. The shuffle expands the
  // four packed values to four dwords (g0 w0 g1 w1), and the emit stays
  // in registers too: range-check, 2-lane prefix sum of the gaps, then
  // one interleaved store of both 8-byte cells. See the AVX2 variant for
  // why the checks accept exactly the scalar decoder's blocks.
  const int64_t full_groups = num_values / 4;
  int64_t g = 0;
  const __m128i max_doc = _mm_set1_epi32(static_cast<int32_t>(kMaxDocId));
  const __m128i max_wt = _mm_set1_epi32(0xFFFF);
  while (g < full_groups && cur.p + 16 <= limit) {
    const uint8_t c = bytes[g];
    const __m128i src =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(cur.p));
    const __m128i mask =
        _mm_load_si128(reinterpret_cast<const __m128i*>(t.shuffle[c]));
    const __m128i x = _mm_shuffle_epi8(src, mask);
    // Lanes 0,1 = the two gaps; lanes 2,3 = the two weights (the upper
    // two lanes of each duplicate lane 0/2 so they never fail a check).
    const __m128i gaps = _mm_shuffle_epi32(x, _MM_SHUFFLE(0, 0, 2, 0));
    const __m128i wts = _mm_shuffle_epi32(x, _MM_SHUFFLE(1, 1, 3, 1));
    const __m128i ok_in = _mm_and_si128(
        _mm_cmpeq_epi32(_mm_min_epu32(gaps, max_doc), gaps),
        _mm_cmpeq_epi32(_mm_min_epu32(wts, max_wt), wts));
    const __m128i pre = _mm_add_epi32(gaps, _mm_slli_si128(gaps, 4));
    const __m128i docs = _mm_add_epi32(
        pre, _mm_set1_epi32(static_cast<int32_t>(cur.doc)));
    const __m128i ok = _mm_and_si128(
        ok_in, _mm_cmpeq_epi32(_mm_min_epu32(docs, max_doc), docs));
    // Only the two low lanes carry real cells; lanes 2,3 hold duplicates
    // of in-range lanes (gaps/weights) or prefix garbage (docs), so the
    // mask is tested on the low 8 bytes.
    if ((_mm_movemask_epi8(ok) & 0xFF) != 0xFF) {
      return Status::DataLoss("posting cell out of range (corrupt block)");
    }
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + (cur.v >> 1)),
                     _mm_unpacklo_epi32(docs, wts));
    cur.doc = static_cast<uint32_t>(_mm_extract_epi32(docs, 1));
    cur.v += 4;
    cur.p += t.length[c];
    ++g;
  }
  // Scalar tail: the last partial group and any group too close to the
  // block end for a whole-register load.
  TEXTJOIN_RETURN_IF_ERROR(internal::GvDecodeScalarGroups(
      bytes, g, ctrl_bytes, num_values, limit, &cur, out));
  if (consumed != nullptr) *consumed = cur.p - bytes;
  return Status::OK();
}

void ScaleCellsSse42(const ICell* cells, int64_t n, double w2, double factor,
                     double* out) {
  const __m128d w2v = _mm_set1_pd(w2);
  const __m128d fv = _mm_set1_pd(factor);
  // Gather the two uint16 weights of a 16-byte pair of cells (byte
  // offsets 4..5 and 12..13) into zero-extended dwords 0 and 1.
  const __m128i shuf = _mm_setr_epi8(4, 5, -128, -128, 12, 13, -128, -128,
                                     -128, -128, -128, -128, -128, -128,
                                     -128, -128);
  int64_t k = 0;
  for (; k + 2 <= n; k += 2) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(cells + k));
    const __m128d w = _mm_cvtepi32_pd(_mm_shuffle_epi8(v, shuf));
    _mm_storeu_pd(out + k, _mm_mul_pd(_mm_mul_pd(w, w2v), fv));
  }
  internal::ScaleCellsScalarImpl(cells + k, n - k, w2, factor, out + k);
}

void PairBoundsSse42(const double* cands, int64_t n, double fixed_max,
                     double fixed_sum, double fixed_norm, double fixed_inv,
                     bool fixed_is_a, double* out) {
  const __m128d fm = _mm_set1_pd(fixed_max);
  const __m128d fs = _mm_set1_pd(fixed_sum);
  const __m128d fn = _mm_set1_pd(fixed_norm);
  const __m128d fi = _mm_set1_pd(fixed_inv);
  int64_t k = 0;
  for (; k + 2 <= n; k += 2) {
    const double* c = cands + 4 * k;
    const __m128d a01 = _mm_loadu_pd(c);      // max0 sum0
    const __m128d a23 = _mm_loadu_pd(c + 2);  // norm0 inv0
    const __m128d b01 = _mm_loadu_pd(c + 4);
    const __m128d b23 = _mm_loadu_pd(c + 6);
    const __m128d maxs = _mm_unpacklo_pd(a01, b01);
    const __m128d sums = _mm_unpackhi_pd(a01, b01);
    const __m128d norms = _mm_unpacklo_pd(a23, b23);
    const __m128d invs = _mm_unpackhi_pd(a23, b23);
    const __m128d h1 = _mm_mul_pd(fm, sums);
    const __m128d h2 = _mm_mul_pd(fs, maxs);
    const __m128d cs = _mm_mul_pd(fn, norms);
    // minpd matches std::min on this domain (nonnegative, finite, no -0).
    const __m128d m3 = _mm_min_pd(_mm_min_pd(h1, h2), cs);
    const __m128d r = fixed_is_a ? _mm_mul_pd(_mm_mul_pd(m3, fi), invs)
                                 : _mm_mul_pd(_mm_mul_pd(m3, invs), fi);
    _mm_storeu_pd(out + k, r);
  }
  internal::PairBoundsScalarImpl(cands + 4 * k, n - k, fixed_max, fixed_sum,
                                 fixed_norm, fixed_inv, fixed_is_a, out + k);
}

}  // namespace

// The merge stays the shared portable walk at this level too — see the
// MergeLinearPortable comment in kernels_common.h for the measurements
// behind that decision.
const KernelTable kSse42Table = {
    "sse42", GvDecodeSse42, ScaleCellsSse42, PairBoundsSse42,
    internal::MergeLinearPortable,
};

}  // namespace kernel
}  // namespace textjoin

#endif  // TEXTJOIN_HAVE_SSE42
