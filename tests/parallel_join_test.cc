#include <gtest/gtest.h>

#include "storage/disk_manager.h"
#include "join/hhnl.h"
#include "parallel/parallel_join.h"
#include "test_util.h"

namespace textjoin {
namespace {

using testing_util::BruteForceJoin;
using testing_util::MakeFixture;
using testing_util::RandomCollection;

std::unique_ptr<testing_util::JoinFixture> Fixture(SimulatedDisk* disk,
                                                   SimilarityConfig cfg = {}) {
  auto inner = RandomCollection(disk, "c1", 60, 6, 70, 81);
  auto outer = RandomCollection(disk, "c2", 45, 5, 70, 82);
  return MakeFixture(disk, std::move(inner), std::move(outer), cfg);
}

TEST(ParallelJoinTest, MatchesSerialResultAllAlgorithms) {
  for (Algorithm algo :
       {Algorithm::kHhnl, Algorithm::kHvnl, Algorithm::kVvm}) {
    SimulatedDisk disk(256);
    auto f = Fixture(&disk);
    JoinSpec spec;
    spec.lambda = 4;
    JoinContext ctx = f->Context(120);
    JoinResult expected = BruteForceJoin(f->inner, f->outer, f->simctx, spec);

    ParallelTextJoin parallel(ParallelTextJoin::Options{algo, 3});
    auto report = parallel.Run(ctx, spec);
    ASSERT_TRUE(report.ok()) << AlgorithmName(algo) << ": "
                             << report.status();
    EXPECT_EQ(report->result, expected) << AlgorithmName(algo);
    EXPECT_EQ(report->worker_io.size(), 3u);
  }
}

TEST(ParallelJoinTest, IdfScoresEqualSerial) {
  SimulatedDisk disk(256);
  SimilarityConfig cfg;
  cfg.cosine_normalize = true;
  cfg.use_idf = true;
  auto f = Fixture(&disk, cfg);
  JoinSpec spec;
  spec.lambda = 3;
  spec.similarity = cfg;
  JoinContext ctx = f->Context(120);
  JoinResult expected = BruteForceJoin(f->inner, f->outer, f->simctx, spec);

  ParallelTextJoin parallel(
      ParallelTextJoin::Options{Algorithm::kHhnl, 4});
  auto report = parallel.Run(ctx, spec);
  ASSERT_TRUE(report.ok());
  // Global idf means the fragment boundaries cannot change any score.
  EXPECT_EQ(report->result, expected);
}

TEST(ParallelJoinTest, MakespanBelowSerialCost) {
  SimulatedDisk disk(256);
  auto f = Fixture(&disk);
  JoinSpec spec;
  spec.lambda = 3;
  JoinContext ctx = f->Context(120);

  disk.ResetStats();
  disk.ResetHeads();
  HhnlJoin serial;
  ASSERT_TRUE(serial.Run(ctx, spec).ok());
  double serial_cost = disk.stats().Cost(5.0);

  ParallelTextJoin parallel(
      ParallelTextJoin::Options{Algorithm::kHhnl, 3});
  auto report = parallel.Run(ctx, spec);
  ASSERT_TRUE(report.ok());
  EXPECT_LT(report->MakespanCost(5.0), serial_cost);
  // Work is conserved or inflated, never reduced.
  EXPECT_GE(report->TotalCost(5.0), 0.9 * serial_cost);
}

TEST(ParallelJoinTest, WorkersClampedToDocuments) {
  SimulatedDisk disk(256);
  auto f = Fixture(&disk);
  JoinSpec spec;
  spec.lambda = 2;
  ParallelTextJoin parallel(
      ParallelTextJoin::Options{Algorithm::kHhnl, 1000});
  auto report = parallel.Run(f->Context(200), spec);
  ASSERT_TRUE(report.ok());
  EXPECT_LE(static_cast<int64_t>(report->worker_io.size()),
            f->outer.num_documents());
  EXPECT_EQ(report->result,
            BruteForceJoin(f->inner, f->outer, f->simctx, spec));
}

TEST(ParallelJoinTest, SingleWorkerEqualsSerial) {
  SimulatedDisk disk(256);
  auto f = Fixture(&disk);
  JoinSpec spec;
  spec.lambda = 4;
  ParallelTextJoin parallel(ParallelTextJoin::Options{Algorithm::kVvm, 1});
  auto report = parallel.Run(f->Context(120), spec);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->result,
            BruteForceJoin(f->inner, f->outer, f->simctx, spec));
  EXPECT_EQ(report->worker_io.size(), 1u);
}

TEST(ParallelJoinTest, RejectsOuterSubset) {
  SimulatedDisk disk(256);
  auto f = Fixture(&disk);
  JoinSpec spec;
  spec.outer_subset = {1, 2, 3};
  ParallelTextJoin parallel(ParallelTextJoin::Options{Algorithm::kHhnl, 2});
  auto report = parallel.Run(f->Context(120), spec);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kUnimplemented);
}

TEST(ParallelJoinTest, InnerSubsetPassesThrough) {
  SimulatedDisk disk(256);
  auto f = Fixture(&disk);
  JoinSpec spec;
  spec.lambda = 3;
  spec.inner_subset = {0, 5, 10, 15, 20};
  ParallelTextJoin parallel(ParallelTextJoin::Options{Algorithm::kHhnl, 3});
  auto report = parallel.Run(f->Context(120), spec);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->result,
            BruteForceJoin(f->inner, f->outer, f->simctx, spec));
}

}  // namespace
}  // namespace textjoin
