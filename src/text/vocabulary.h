#ifndef TEXTJOIN_TEXT_VOCABULARY_H_
#define TEXTJOIN_TEXT_VOCABULARY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "text/types.h"

namespace textjoin {

// The "standard mapping" from terms to term numbers that the paper assumes
// all local IR systems share (Section 3). One Vocabulary instance plays the
// role of that multidatabase-wide standard: every collection built against
// the same Vocabulary uses the same numbers for the same terms, so joins
// can compare numbers instead of strings.
class Vocabulary {
 public:
  Vocabulary() = default;

  // Returns the id of `term`, assigning the next free id on first sight.
  // Fails when the 3-byte id space is exhausted.
  Result<TermId> AddOrGet(std::string_view term);

  // Returns the id of `term` or NotFound.
  Result<TermId> Lookup(std::string_view term) const;

  // Returns the term string for `id` or NotFound.
  Result<std::string> TermOf(TermId id) const;

  int64_t size() const { return static_cast<int64_t>(terms_.size()); }

 private:
  std::unordered_map<std::string, TermId> ids_;
  std::vector<std::string> terms_;
};

}  // namespace textjoin

#endif  // TEXTJOIN_TEXT_VOCABULARY_H_
