#include "index/inverted_file.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"
#include "common/math_util.h"
#include "index/varint.h"
#include "kernel/dispatch.h"
#include "kernel/group_varint.h"
#include "storage/coding.h"

namespace textjoin {

void EncodeICells(const std::vector<ICell>& cells, std::vector<uint8_t>* out) {
  out->clear();
  out->reserve(cells.size() * kICellBytes);
  for (const ICell& c : cells) {
    PutFixed24(out, c.doc);
    PutFixed16(out, c.weight);
  }
}

Result<std::vector<ICell>> DecodeICells(const uint8_t* bytes,
                                        int64_t byte_length, int64_t count) {
  if (byte_length < count * kICellBytes) {
    return Status::DataLoss("i-cell array shorter than its cell count");
  }
  std::vector<ICell> cells;
  cells.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    const uint8_t* p = bytes + i * kICellBytes;
    cells.push_back(ICell{GetFixed24(p), GetFixed16(p + 3)});
  }
  return cells;
}

void EncodePostings(const std::vector<ICell>& cells,
                    PostingCompression compression, std::vector<uint8_t>* out,
                    std::vector<InvertedFile::PostingBlockMeta>* blocks) {
  out->clear();
  if (blocks != nullptr) blocks->clear();
  InvertedFile::PostingBlockMeta block;
  for (size_t i = 0; i < cells.size(); ++i) {
    const bool block_start = (i % kPostingBlockCells) == 0;
    if (block_start) {
      block = InvertedFile::PostingBlockMeta{};
      block.first_doc = cells[i].doc;
      block.offset_bytes = static_cast<int64_t>(out->size());
    }
    if (compression == PostingCompression::kNone) {
      PutFixed24(out, cells[i].doc);
      PutFixed16(out, cells[i].weight);
    } else if (compression == PostingCompression::kDeltaVarint) {
      // Ascending document numbers; delta encoding restarts at each block
      // boundary, so the first gap of a block is the document number
      // itself and later gaps are strictly positive deltas.
      uint64_t gap = block_start ? cells[i].doc : cells[i].doc - block.last_doc;
      PutVarint(out, gap);
      PutVarint(out, cells[i].weight);
    }
    block.last_doc = cells[i].doc;
    block.max_weight =
        std::max(block.max_weight, static_cast<float>(cells[i].weight));
    ++block.cell_count;
    if (i + 1 == cells.size() || ((i + 1) % kPostingBlockCells) == 0) {
      // Group-varint is a whole-block format (control bytes up front), so
      // the block encodes in one go at the boundary. Deltas restart here
      // too, same as kDeltaVarint.
      if (compression == PostingCompression::kGroupVarint) {
        kernel::GvEncodeBlock(cells.data() + (i + 1 - block.cell_count),
                              block.cell_count, out);
      }
      if (blocks != nullptr) blocks->push_back(block);
    }
  }
}

void EncodePostings(const std::vector<ICell>& cells,
                    PostingCompression compression,
                    std::vector<uint8_t>* out) {
  EncodePostings(cells, compression, out, nullptr);
}

Status DecodePostingBlockInto(const uint8_t* bytes, int64_t byte_length,
                              int64_t count, PostingCompression compression,
                              ICell* out) {
  if (count < 0) {
    return Status::DataLoss("negative posting block cell count");
  }
  if (compression == PostingCompression::kNone) {
    if (byte_length < count * kICellBytes) {
      return Status::DataLoss("posting block shorter than its cell count");
    }
    for (int64_t i = 0; i < count; ++i) {
      const uint8_t* p = bytes + i * kICellBytes;
      out[i] = ICell{GetFixed24(p), GetFixed16(p + 3)};
    }
    return Status::OK();
  }
  if (compression == PostingCompression::kGroupVarint) {
    int64_t consumed = 0;
    return kernel::Active().gv_decode(bytes, byte_length, count, out,
                                      &consumed);
  }
  const uint8_t* p = bytes;
  const uint8_t* limit = bytes + byte_length;
  DocId doc = 0;
  for (int64_t i = 0; i < count; ++i) {
    uint64_t gap = 0, w = 0;
    TEXTJOIN_RETURN_IF_ERROR(GetVarint(&p, limit, &gap));
    TEXTJOIN_RETURN_IF_ERROR(GetVarint(&p, limit, &w));
    const uint64_t next = (i == 0 ? uint64_t{0} : uint64_t{doc}) + gap;
    if (next > 0xFFFFFFull || w > 0xFFFFull) {
      return Status::DataLoss("posting cell out of range (corrupt block)");
    }
    doc = static_cast<DocId>(next);
    out[i] = ICell{doc, static_cast<Weight>(w)};
  }
  return Status::OK();
}

Status DecodePostingBlock(const uint8_t* bytes, int64_t byte_length,
                          int64_t count, PostingCompression compression,
                          std::vector<ICell>* out) {
  if (count < 0) {
    return Status::DataLoss("negative posting block cell count");
  }
  const size_t base = out->size();
  out->resize(base + static_cast<size_t>(count));
  const Status s =
      DecodePostingBlockInto(bytes, byte_length, count, compression,
                             out->data() + base);
  // Fail closed: a corrupt block leaves no partially-decoded cells behind.
  if (!s.ok()) out->resize(base);
  return s;
}

Result<std::vector<ICell>> DecodePostings(const uint8_t* bytes,
                                          int64_t byte_length, int64_t count,
                                          PostingCompression compression) {
  if (count < 0) {
    return Status::DataLoss("negative posting cell count");
  }
  std::vector<ICell> cells;
  cells.reserve(static_cast<size_t>(count));
  if (compression == PostingCompression::kNone) {
    TEXTJOIN_RETURN_IF_ERROR(
        DecodePostingBlock(bytes, byte_length, count, compression, &cells));
    return cells;
  }
  if (compression == PostingCompression::kGroupVarint) {
    // Blocks are self-delimiting (the decoder reports the bytes it
    // consumed), so the entry decodes block after block like varint does.
    cells.resize(static_cast<size_t>(count));
    const kernel::KernelTable& k = kernel::Active();
    const uint8_t* p = bytes;
    int64_t bytes_left = byte_length;
    int64_t done = 0;
    while (done < count) {
      const int64_t n = std::min<int64_t>(count - done, kPostingBlockCells);
      int64_t consumed = 0;
      TEXTJOIN_RETURN_IF_ERROR(
          k.gv_decode(p, bytes_left, n, cells.data() + done, &consumed));
      p += consumed;
      bytes_left -= consumed;
      done += n;
    }
    return cells;
  }
  // Delta encoding restarts every kPostingBlockCells cells; decode block
  // by block, tracking the byte cursor across restarts.
  const uint8_t* p = bytes;
  const uint8_t* limit = bytes + byte_length;
  int64_t remaining = count;
  while (remaining > 0) {
    const int64_t n = std::min<int64_t>(remaining, kPostingBlockCells);
    DocId doc = 0;
    for (int64_t i = 0; i < n; ++i) {
      uint64_t gap = 0, w = 0;
      TEXTJOIN_RETURN_IF_ERROR(GetVarint(&p, limit, &gap));
      TEXTJOIN_RETURN_IF_ERROR(GetVarint(&p, limit, &w));
      const uint64_t next = (i == 0 ? uint64_t{0} : uint64_t{doc}) + gap;
      if (next > 0xFFFFFFull || w > 0xFFFFull) {
        return Status::DataLoss("posting cell out of range (corrupt entry)");
      }
      doc = static_cast<DocId>(next);
      cells.push_back(ICell{doc, static_cast<Weight>(w)});
    }
    remaining -= n;
  }
  return cells;
}

Result<InvertedFile> InvertedFile::Build(Disk* disk,
                                         std::string name,
                                         const DocumentCollection& collection) {
  return Build(disk, std::move(name), collection, BuildOptions{});
}

Result<InvertedFile> InvertedFile::Build(Disk* disk,
                                         std::string name,
                                         const DocumentCollection& collection,
                                         const BuildOptions& options) {
  // Accumulate postings. Documents are scanned in ascending document
  // number, so each posting list comes out sorted by document number.
  std::unordered_map<TermId, std::vector<ICell>> postings;
  postings.reserve(
      static_cast<size_t>(collection.num_distinct_terms()) * 2 + 1);
  auto scanner = collection.Scan();
  while (!scanner.Done()) {
    DocId doc = scanner.next_doc();
    TEXTJOIN_ASSIGN_OR_RETURN(Document d, scanner.Next());
    for (const DCell& c : d.cells()) {
      postings[c.term].push_back(ICell{doc, c.weight});
    }
  }

  std::vector<TermId> terms;
  terms.reserve(postings.size());
  for (const auto& [term, cells] : postings) terms.push_back(term);
  std::sort(terms.begin(), terms.end());

  InvertedFile inv;
  inv.disk_ = disk;
  inv.name_ = std::move(name);
  inv.file_ = disk->CreateFile(inv.name_);
  inv.compression_ = options.compression;

  PageStreamWriter writer(disk, inv.file_);
  std::vector<BPlusTree::LeafCell> leaf_cells;
  leaf_cells.reserve(terms.size());
  std::vector<uint8_t> bytes;
  std::vector<PostingBlockMeta> blocks;
  for (TermId term : terms) {
    const std::vector<ICell>& cells = postings[term];
    EncodePostings(cells, options.compression, &bytes, &blocks);
    int64_t offset = writer.Append(bytes);
    if (offset > 0xFFFFFFFFll) {
      return Status::ResourceExhausted(
          "inverted file exceeds 4-byte address space");
    }
    float max_w = 0;
    for (const PostingBlockMeta& b : blocks) {
      max_w = std::max(max_w, b.max_weight);
    }
    EntryMeta meta;
    meta.term = term;
    meta.offset_bytes = offset;
    meta.cell_count = static_cast<int64_t>(cells.size());
    meta.byte_length = static_cast<int64_t>(bytes.size());
    meta.max_weight = max_w;
    meta.blocks = blocks;
    inv.entries_.push_back(std::move(meta));
    uint16_t df16 = cells.size() > 0xFFFF
                        ? uint16_t{0xFFFF}
                        : static_cast<uint16_t>(cells.size());
    leaf_cells.push_back(
        BPlusTree::LeafCell{term, static_cast<uint32_t>(offset), df16});
  }
  inv.total_bytes_ = writer.size();
  TEXTJOIN_RETURN_IF_ERROR(writer.Finish());
  TEXTJOIN_ASSIGN_OR_RETURN(
      inv.btree_, BPlusTree::BulkLoad(disk, inv.name_ + ".btree", leaf_cells));
  return inv;
}

InvertedFile InvertedFile::FromParts(Disk* disk, FileId file,
                                     std::string name, BPlusTree btree,
                                     std::vector<EntryMeta> entries,
                                     int64_t total_bytes,
                                     PostingCompression compression) {
  InvertedFile inv;
  inv.disk_ = disk;
  inv.file_ = file;
  inv.name_ = std::move(name);
  inv.btree_ = std::move(btree);
  inv.entries_ = std::move(entries);
  inv.total_bytes_ = total_bytes;
  inv.compression_ = compression;
  return inv;
}

int64_t InvertedFile::size_in_pages() const {
  auto size = disk_->FileSizeInPages(file_);
  TEXTJOIN_CHECK(size.ok());
  return size.value();
}

double InvertedFile::avg_entry_size_pages() const {
  if (entries_.empty()) return 0.0;
  return static_cast<double>(total_bytes_) /
         static_cast<double>(num_terms()) /
         static_cast<double>(disk_->page_size());
}

int64_t InvertedFile::FindEntry(TermId term) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), term,
      [](const EntryMeta& e, TermId t) { return e.term < t; });
  if (it == entries_.end() || it->term != term) return -1;
  return it - entries_.begin();
}

Result<std::vector<ICell>> InvertedFile::FetchEntry(TermId term) const {
  int64_t idx = FindEntry(term);
  if (idx < 0) {
    return Status::NotFound("term " + std::to_string(term) +
                            " has no inverted entry");
  }
  const EntryMeta& e = entries_[static_cast<size_t>(idx)];
  std::vector<uint8_t> bytes;
  PageStreamReader reader(disk_, file_);
  TEXTJOIN_RETURN_IF_ERROR(
      reader.Read(e.offset_bytes, e.byte_length, &bytes));
  return DecodePostings(bytes.data(), e.byte_length, e.cell_count,
                        compression_);
}

Result<std::vector<uint8_t>> InvertedFile::FetchEntryRaw(TermId term) const {
  int64_t idx = FindEntry(term);
  if (idx < 0) {
    return Status::NotFound("term " + std::to_string(term) +
                            " has no inverted entry");
  }
  const EntryMeta& e = entries_[static_cast<size_t>(idx)];
  std::vector<uint8_t> bytes;
  PageStreamReader reader(disk_, file_);
  TEXTJOIN_RETURN_IF_ERROR(
      reader.Read(e.offset_bytes, e.byte_length, &bytes));
  return bytes;
}

int64_t InvertedFile::EntryPageSpan(int64_t index) const {
  TEXTJOIN_CHECK_GE(index, 0);
  TEXTJOIN_CHECK_LT(index, static_cast<int64_t>(entries_.size()));
  const EntryMeta& e = entries_[static_cast<size_t>(index)];
  if (e.byte_length == 0) return 0;
  const int64_t page_size = disk_->page_size();
  int64_t first = e.offset_bytes / page_size;
  int64_t last = (e.offset_bytes + e.byte_length - 1) / page_size;
  return last - first + 1;
}

InvertedFile::Scanner::Scanner(const InvertedFile* file)
    : file_(file), reader_(file->disk_, file->file_) {}

Result<std::vector<ICell>> InvertedFile::Scanner::Next() {
  if (Done()) return Status::OutOfRange("scan past end of inverted file");
  const EntryMeta& e = file_->entries_[static_cast<size_t>(next_)];
  ++next_;
  std::vector<uint8_t> bytes(static_cast<size_t>(e.byte_length));
  TEXTJOIN_RETURN_IF_ERROR(reader_.Read(e.byte_length, bytes.data()));
  return DecodePostings(bytes.data(), e.byte_length, e.cell_count,
                        file_->compression_);
}

Result<std::vector<uint8_t>> InvertedFile::Scanner::NextRaw() {
  if (Done()) return Status::OutOfRange("scan past end of inverted file");
  const EntryMeta& e = file_->entries_[static_cast<size_t>(next_)];
  ++next_;
  std::vector<uint8_t> bytes(static_cast<size_t>(e.byte_length));
  TEXTJOIN_RETURN_IF_ERROR(reader_.Read(e.byte_length, bytes.data()));
  return bytes;
}

Status InvertedFile::Scanner::SkipEntry() {
  if (Done()) return Status::OutOfRange("scan past end of inverted file");
  const EntryMeta& e = file_->entries_[static_cast<size_t>(next_)];
  ++next_;
  std::vector<uint8_t> bytes(static_cast<size_t>(e.byte_length));
  return reader_.Read(e.byte_length, bytes.data());
}

}  // namespace textjoin
