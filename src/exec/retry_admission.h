#ifndef TEXTJOIN_EXEC_RETRY_ADMISSION_H_
#define TEXTJOIN_EXEC_RETRY_ADMISSION_H_

#include <cstdint>

#include "common/status.h"

namespace textjoin {

// Deterministic retry-with-backoff for queries shed by the admission
// controller. The serving scheduler runs on a simulated clock, so the
// backoff is exponential WITHOUT jitter — two runs of the same trace with
// the same seed retry at identical times, which is what lets the chaos
// harness compare a degraded run against a reference bit-for-bit.
//
// Only admission sheds (kResourceExhausted: queue full, queue timeout,
// memory grant starvation) are retried; validation errors and execution
// failures are not, per IsRetriableAdmission.
struct RetryAdmissionPolicy {
  // Retries after the initial attempt; 0 disables retry entirely.
  int64_t max_attempts = 1;
  double initial_backoff_ms = 4.0;
  double multiplier = 2.0;
  double max_backoff_ms = 64.0;
};

class RetryAdmission {
 public:
  explicit RetryAdmission(const RetryAdmissionPolicy& policy)
      : policy_(policy) {}

  // Whether a query whose `attempt`-th try (1-based) failed with `status`
  // should be requeued.
  bool ShouldRetry(const Status& status, int64_t attempt) const {
    return attempt <= policy_.max_attempts && IsRetriableAdmission(status);
  }

  // Backoff before the retry following the `attempt`-th failed try:
  // initial * multiplier^(attempt-1), capped at max_backoff_ms.
  double BackoffMs(int64_t attempt) const;

  const RetryAdmissionPolicy& policy() const { return policy_; }

 private:
  RetryAdmissionPolicy policy_;
};

}  // namespace textjoin

#endif  // TEXTJOIN_EXEC_RETRY_ADMISSION_H_
