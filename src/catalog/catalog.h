#ifndef TEXTJOIN_CATALOG_CATALOG_H_
#define TEXTJOIN_CATALOG_CATALOG_H_

#include <string>

#include "common/status.h"
#include "index/inverted_file.h"
#include "text/collection.h"

namespace textjoin {

// Durable catalogs: the in-memory metadata of a DocumentCollection or an
// InvertedFile (document directory, norms, document frequencies, posting
// offsets, B+tree anchors) serialized into a file ON the simulated disk,
// so that a disk snapshot (storage/snapshot.h) is a complete database
// that can be reopened later:
//
//   SaveCollectionCatalog(col, &disk, "docs.cat");
//   SaveDiskSnapshot(disk, "/path/db.tjsn");
//   ...
//   auto disk2 = LoadDiskSnapshot("/path/db.tjsn");
//   auto col2  = OpenCollection(disk2->get(), "docs.cat");
//
// Each catalog is one CRC-protected record; Open* verify the checksum
// and the referenced data files.

// Writes the catalog of `collection` into a new file named
// `catalog_file_name` on the collection's disk.
Status SaveCollectionCatalog(const DocumentCollection& collection,
                             const std::string& catalog_file_name);

// Reopens a collection from its catalog. The data file is located by the
// name recorded at save time.
Result<DocumentCollection> OpenCollection(
    Disk* disk, const std::string& catalog_file_name);

// Same for inverted files (records the posting file, its B+tree and the
// compression mode).
Status SaveInvertedFileCatalog(const InvertedFile& inverted,
                               const std::string& catalog_file_name);

Result<InvertedFile> OpenInvertedFile(Disk* disk,
                                      const std::string& catalog_file_name);

}  // namespace textjoin

#endif  // TEXTJOIN_CATALOG_CATALOG_H_
