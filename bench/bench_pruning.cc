// A3: pruning ablation on TREC-shaped workloads. The TREC profiles are
// statistics-only, so each workload is a synthetic collection pair scaled
// down 1:4 in per-document terms (and far down in document count) while
// keeping the profiles' length RATIOS — the quantity the adaptive merge
// kernel and the bound checks respond to. Every join runs twice, pruning
// on (the default JoinSpec) and off, results are verified identical, and
// the table reports the measured CPU counters side by side:
//
//   steps   merge-step CPU cost: cell compares of the document-merge walk
//           plus similarity accumulations
//   total   steps + heap offers + cells decoded + bound checks, i.e.
//           everything the pruned run paid including the checks themselves
//
// plus the candidate pairs skipped outright (HHNL) and accumulator
// admissions suppressed (HVNL/VVM). The FR(x2) x DOE workload is the
// paper's Group 5 merge transform applied to the FR-like side: at a ~23x
// length ratio the adaptive kernel gallops and merge steps collapse,
// which is where the headline reduction comes from.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/logging.h"
#include "index/inverted_file.h"
#include "join/hhnl.h"
#include "join/hvnl.h"
#include "join/pruning.h"
#include "join/vvm.h"
#include "obs/query_stats.h"
#include "sim/synthetic.h"
#include "storage/disk_manager.h"

namespace textjoin {
namespace {

constexpr int64_t kPage = 512;
constexpr int64_t kBufferPages = 1024;

DocumentCollection Gen(SimulatedDisk* disk, const std::string& name,
                       int64_t docs, double terms, uint64_t seed) {
  // One shared 4000-term universe (Zipf 1.0) so every pair of collections
  // overlaps the way same-domain TREC text does.
  SyntheticSpec spec{docs, terms, 4000, 1.0, 0, seed};
  auto c = GenerateCollection(disk, name, spec);
  TEXTJOIN_CHECK_OK(c.status());
  return std::move(c).value();
}

struct Measured {
  JoinResult result;
  CpuStats cpu;
};

Measured RunOnce(SimulatedDisk* disk, const DocumentCollection& inner,
                 const InvertedFile& index, const DocumentCollection& outer,
                 const InvertedFile& outer_index,
                 const SimilarityContext& simctx, TextJoinAlgorithm& algo,
                 const PruningConfig& pruning, int64_t lambda) {
  JoinContext ctx;
  ctx.inner = &inner;
  ctx.outer = &outer;
  ctx.inner_index = &index;
  ctx.outer_index = &outer_index;
  ctx.similarity = &simctx;
  ctx.sys = SystemParams{kBufferPages, kPage, 5.0};
  QueryStatsCollector collector(disk);
  ctx.stats = &collector;
  JoinSpec spec;
  spec.lambda = lambda;
  spec.pruning = pruning;
  auto r = algo.Run(ctx, spec);
  TEXTJOIN_CHECK_OK(r.status());
  return Measured{std::move(r).value(), collector.Finish().root.cpu};
}

int64_t TotalWork(const CpuStats& c) {
  return c.cell_compares + c.accumulations + c.heap_offers + c.cells_decoded +
         c.bound_checks;
}

double Reduction(int64_t off, int64_t on) {
  if (off <= 0) return 0.0;
  return 100.0 * (1.0 - static_cast<double>(on) / static_cast<double>(off));
}

void RunAblation(SimulatedDisk* disk, const std::string& key,
                 const char* title, const DocumentCollection& inner,
                 const DocumentCollection& outer, int64_t lambda = 20) {
  auto index = InvertedFile::Build(disk, key + ".idx", inner);
  TEXTJOIN_CHECK_OK(index.status());
  auto outer_index = InvertedFile::Build(disk, key + ".oidx", outer);
  TEXTJOIN_CHECK_OK(outer_index.status());
  auto simctx = SimilarityContext::Create(inner, outer, {});
  TEXTJOIN_CHECK_OK(simctx.status());

  std::printf("\n== %s  (lambda=%lld) ==\n", title,
              static_cast<long long>(lambda));
  std::printf("%-6s %13s %13s %8s %13s %13s %8s %9s %9s\n", "algo",
              "steps(off)", "steps(on)", "red%", "total(off)", "total(on)",
              "red%", "pruned", "suppr.");
  HhnlJoin hhnl;
  HvnlJoin hvnl;
  VvmJoin vvm;
  struct Row {
    const char* label;
    TextJoinAlgorithm* algo;
  };
  for (const Row& row :
       {Row{"hhnl", &hhnl}, Row{"hvnl", &hvnl}, Row{"vvm", &vvm}}) {
    Measured off = RunOnce(disk, inner, *index, outer, *outer_index, *simctx,
                           *row.algo, PruningConfig::Disabled(), lambda);
    Measured on = RunOnce(disk, inner, *index, outer, *outer_index, *simctx,
                          *row.algo, PruningConfig{}, lambda);
    if (!(off.result == on.result)) {
      std::printf("FATAL: %s pruned result differs on %s\n", row.label, title);
      std::exit(1);
    }
    const int64_t steps_off = off.cpu.cell_compares + off.cpu.accumulations;
    const int64_t steps_on = on.cpu.cell_compares + on.cpu.accumulations;
    std::printf(
        "%-6s %13lld %13lld %7.1f%% %13lld %13lld %7.1f%% %9lld %9lld\n",
        row.label, static_cast<long long>(steps_off),
        static_cast<long long>(steps_on), Reduction(steps_off, steps_on),
        static_cast<long long>(TotalWork(off.cpu)),
        static_cast<long long>(TotalWork(on.cpu)),
        Reduction(TotalWork(off.cpu), TotalWork(on.cpu)),
        static_cast<long long>(on.cpu.pairs_pruned),
        static_cast<long long>(on.cpu.candidates_suppressed));
  }
}

void Main() {
  SimulatedDisk disk(kPage);
  // Per-document terms are the TREC averages / 4 (WSJ 329 -> 82,
  // FR 1017 -> 254, DOE 89 -> 22); document counts are bench-sized.
  DocumentCollection wsj1 = Gen(&disk, "wsj1", 240, 82.0, 11);
  DocumentCollection wsj2 = Gen(&disk, "wsj2", 240, 82.0, 12);
  DocumentCollection fr = Gen(&disk, "fr", 120, 254.0, 13);
  DocumentCollection doe = Gen(&disk, "doe", 400, 22.0, 14);

  // Group 5 transform on the FR side: merging consecutive documents
  // doubles the length skew against DOE (ratio ~23, past the galloping
  // switch at 16).
  auto fr2 = MergeDocuments(&disk, "fr2", fr, 2);
  TEXTJOIN_CHECK_OK(fr2.status());

  std::printf(
      "== A3: exact top-lambda pruning ablation (delta=0.1) ==\n");
  std::printf(
      "steps = cell compares + accumulations (the merge-step CPU cost);\n"
      "total adds heap offers, cells decoded and the bound checks the\n"
      "pruned run spends. Results verified identical on and off.\n");

  RunAblation(&disk, "w1", "WSJ x WSJ (82 terms/doc both sides)", wsj1, wsj2);
  RunAblation(&disk, "w2", "FR x DOE (254 vs 22 terms/doc)", fr, doe);
  RunAblation(&disk, "w3", "FR(x2) x DOE (508 vs 22 terms/doc, gallops)",
              *fr2, doe);
  // Selective query on the short-document profile: a small result budget
  // tightens theta early and DOE-sized documents keep the admission
  // suffix bounds tight, so the HVNL/VVM suppression path engages too.
  DocumentCollection doe1 = Gen(&disk, "doe1", 400, 22.0, 15);
  RunAblation(&disk, "w4", "DOE x DOE, selective", doe1, doe,
              /*lambda=*/3);
}

}  // namespace
}  // namespace textjoin

int main() {
  textjoin::Main();
  return 0;
}
