#include "kernel/kernels.h"
#include "kernel/kernels_common.h"

// The portable baseline table: compiled for the project's default
// architecture with no SIMD assumptions. Every other dispatch level must
// be bit-identical to this one (tests/kernel_test.cc sweeps the levels).

namespace textjoin {
namespace kernel {

namespace {

Status GvDecodeScalar(const uint8_t* bytes, int64_t byte_length, int64_t count,
                      ICell* out, int64_t* consumed) {
  return internal::GvDecodeScalarImpl(bytes, byte_length, count, out,
                                      consumed);
}

void ScaleCellsScalar(const ICell* cells, int64_t n, double w2, double factor,
                      double* out) {
  internal::ScaleCellsScalarImpl(cells, n, w2, factor, out);
}

void PairBoundsScalar(const double* cands, int64_t n, double fixed_max,
                      double fixed_sum, double fixed_norm, double fixed_inv,
                      bool fixed_is_a, double* out) {
  internal::PairBoundsScalarImpl(cands, n, fixed_max, fixed_sum, fixed_norm,
                                 fixed_inv, fixed_is_a, out);
}

}  // namespace

namespace internal {

int64_t MergeLinearPortable(const DCell* a, int64_t na, const DCell* b,
                            int64_t nb, MergeCursor* cur, int64_t max_steps,
                            int32_t* match_a, int32_t* match_b,
                            int64_t* num_matches) {
  return MergeLinearScalarImpl(a, na, b, nb, cur, max_steps, match_a, match_b,
                               num_matches);
}

}  // namespace internal

const KernelTable kScalarTable = {
    "scalar", GvDecodeScalar, ScaleCellsScalar, PairBoundsScalar,
    internal::MergeLinearPortable,
};

}  // namespace kernel
}  // namespace textjoin
