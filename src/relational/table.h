#ifndef TEXTJOIN_RELATIONAL_TABLE_H_
#define TEXTJOIN_RELATIONAL_TABLE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "relational/value.h"
#include "text/collection.h"

namespace textjoin {

// A column of a table schema.
struct Column {
  std::string name;
  ColumnType type = ColumnType::kInt;
};

// An in-memory relation whose TEXT columns reference documents in attached
// DocumentCollections, e.g. the paper's
//   Applicants(SSN, Name, Resume)  /  Positions(P#, Title, Job_descr).
class Table {
 public:
  Table(std::string name, std::vector<Column> schema);

  const std::string& name() const { return name_; }
  const std::vector<Column>& schema() const { return schema_; }
  int64_t num_columns() const { return static_cast<int64_t>(schema_.size()); }
  int64_t num_rows() const { return static_cast<int64_t>(rows_.size()); }

  // Index of a column by name, or -1.
  int64_t ColumnIndex(const std::string& name) const;

  // Attaches the backing collection of a TEXT column. Must be called
  // before rows referencing that column's documents are added.
  Status AttachCollection(const std::string& column,
                          const DocumentCollection* collection);

  const DocumentCollection* CollectionOf(int64_t column) const;

  // Appends a row; values must match the schema's types, and TEXT refs
  // must be in range of the attached collection.
  Status AddRow(std::vector<Value> values);

  const std::vector<Value>& row(int64_t r) const;
  const Value& at(int64_t r, int64_t c) const;

  // Row index of the row whose TEXT column `column` references `doc`,
  // or -1. (Rows reference documents uniquely in this layer.)
  int64_t RowOfDocument(int64_t column, DocId doc) const;

 private:
  std::string name_;
  std::vector<Column> schema_;
  std::vector<const DocumentCollection*> collections_;  // per column
  std::vector<std::vector<Value>> rows_;
};

}  // namespace textjoin

#endif  // TEXTJOIN_RELATIONAL_TABLE_H_
