#include <gtest/gtest.h>

#include "index/inverted_file.h"
#include "join/hhnl.h"
#include "join/hvnl.h"
#include "join/vvm.h"
#include "parallel/parallel_join.h"
#include "planner/planner.h"
#include "storage/buffer_pool.h"
#include "test_util.h"

namespace textjoin {
namespace {

using testing_util::MakeFixture;
using testing_util::RandomCollection;

// Every component must turn an I/O error into a clean non-OK Status —
// never a crash, never a silently wrong result.

TEST(FaultInjectionTest, DiskFailsAfterCountdown) {
  SimulatedDisk disk(64);
  FileId f = disk.CreateFile("f");
  std::vector<uint8_t> page(64, 1);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(disk.AppendPage(f, page.data(), 64).ok());

  disk.InjectReadFault(2);
  std::vector<uint8_t> out(64);
  EXPECT_TRUE(disk.ReadPage(f, 0, out.data()).ok());
  EXPECT_TRUE(disk.ReadPage(f, 1, out.data()).ok());
  Status failed = disk.ReadPage(f, 2, out.data());
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(failed.code(), StatusCode::kInternal);
  // Sticky until cleared.
  EXPECT_FALSE(disk.ReadPage(f, 2, out.data()).ok());
  disk.ClearReadFault();
  EXPECT_TRUE(disk.ReadPage(f, 2, out.data()).ok());
}

TEST(FaultInjectionTest, CollectionReadPropagates) {
  SimulatedDisk disk(64);
  auto col = RandomCollection(&disk, "c", 30, 5, 40, 1);
  disk.InjectReadFault(0);
  auto doc = col.ReadDocument(3);
  EXPECT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kInternal);
  disk.ClearReadFault();

  disk.InjectReadFault(1);
  auto scan = col.Scan();
  Status st = Status::OK();
  while (!scan.Done()) {
    auto d = scan.Next();
    if (!d.ok()) {
      st = d.status();
      break;
    }
  }
  EXPECT_FALSE(st.ok());
  disk.ClearReadFault();
}

TEST(FaultInjectionTest, BufferPoolPropagates) {
  SimulatedDisk disk(64);
  FileId f = disk.CreateFile("f");
  std::vector<uint8_t> page(64, 1);
  ASSERT_TRUE(disk.AppendPage(f, page.data(), 64).ok());
  BufferPool pool(&disk, 2);
  disk.InjectReadFault(0);
  auto pinned = pool.Pin(f, 0);
  EXPECT_FALSE(pinned.ok());
  disk.ClearReadFault();
  // The failed pin must not leave a frame behind.
  EXPECT_TRUE(pool.FlushAll().ok());
  EXPECT_TRUE(pool.Pin(f, 0).ok());
}

TEST(FaultInjectionTest, BTreeLookupPropagates) {
  SimulatedDisk disk(64);
  std::vector<BPlusTree::LeafCell> cells;
  for (TermId t = 0; t < 200; ++t) cells.push_back({t, t * 10, 1});
  auto tree = BPlusTree::BulkLoad(&disk, "t", cells);
  ASSERT_TRUE(tree.ok());
  disk.InjectReadFault(1);  // fail mid-descent
  auto hit = tree->Lookup(150);
  EXPECT_FALSE(hit.ok());
  disk.ClearReadFault();
  EXPECT_TRUE(tree->Lookup(150).ok());
}

// Sweep fault positions through every executor; each run must either
// succeed (fault armed beyond its reads) or fail cleanly.
class ExecutorFaultTest : public ::testing::TestWithParam<int> {};

TEST_P(ExecutorFaultTest, AllExecutorsFailCleanly) {
  const int64_t fault_at = GetParam();
  SimulatedDisk disk(256);
  auto f = MakeFixture(&disk, RandomCollection(&disk, "c1", 30, 6, 50, 2),
                       RandomCollection(&disk, "c2", 20, 5, 50, 3));
  JoinSpec spec;
  spec.lambda = 3;
  JoinContext ctx = f->Context(60);

  HhnlJoin hhnl;
  HvnlJoin hvnl;
  VvmJoin vvm;
  TextJoinAlgorithm* algos[] = {&hhnl, &hvnl, &vvm};
  for (TextJoinAlgorithm* algo : algos) {
    disk.InjectReadFault(fault_at);
    auto r = algo->Run(ctx, spec);
    disk.ClearReadFault();
    if (!r.ok()) {
      EXPECT_EQ(r.status().code(), StatusCode::kInternal)
          << algo->name() << " fault_at=" << fault_at;
    } else {
      // The run finished before the fault armed; the result must be the
      // correct one.
      EXPECT_EQ(*r, testing_util::BruteForceJoin(f->inner, f->outer,
                                                 f->simctx, spec))
          << algo->name();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(FaultPositions, ExecutorFaultTest,
                         ::testing::Values(0, 1, 3, 7, 15, 40, 100, 1000,
                                           100000));

TEST(FaultInjectionTest, PlannerPropagates) {
  SimulatedDisk disk(256);
  auto f = MakeFixture(&disk, RandomCollection(&disk, "c1", 30, 6, 50, 4),
                       RandomCollection(&disk, "c2", 20, 5, 50, 5));
  JoinSpec spec;
  JoinPlanner planner;
  disk.InjectReadFault(0);
  auto r = planner.Execute(f->Context(60), spec);
  disk.ClearReadFault();
  EXPECT_FALSE(r.ok());
}

TEST(FaultInjectionTest, ParallelJoinPropagates) {
  SimulatedDisk disk(256);
  auto f = MakeFixture(&disk, RandomCollection(&disk, "c1", 30, 6, 50, 6),
                       RandomCollection(&disk, "c2", 20, 5, 50, 7));
  JoinSpec spec;
  ParallelTextJoin parallel(ParallelTextJoin::Options{Algorithm::kHhnl, 3});
  disk.InjectReadFault(5);
  auto r = parallel.Run(f->Context(60), spec);
  disk.ClearReadFault();
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace textjoin
