#ifndef TEXTJOIN_INDEX_BTREE_H_
#define TEXTJOIN_INDEX_BTREE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/disk.h"
#include "text/types.h"

namespace textjoin {

// Disk-resident B+tree keyed by term number, the term directory of an
// inverted file (Section 5.2 of the paper).
//
// Leaf cells are 9 bytes, exactly the paper's layout: 3-byte term number,
// 4-byte address (byte offset of the term's inverted file entry) and 2-byte
// document frequency (clamped at 65535 on disk; exact frequencies live in
// the collection catalog). Internal cells are 7 bytes: 3-byte separator key
// and 4-byte child page number.
//
// Page layout: [level:u8][cell_count:u16][cells...]. level 0 = leaf.
class BPlusTree {
 public:
  struct LeafCell {
    TermId term = 0;
    uint32_t address = 0;  // byte offset of the inverted file entry
    uint16_t doc_freq = 0;

    friend bool operator==(const LeafCell& a, const LeafCell& b) {
      return a.term == b.term && a.address == b.address &&
             a.doc_freq == b.doc_freq;
    }
  };

  static constexpr int64_t kLeafCellBytes = 9;
  static constexpr int64_t kInternalCellBytes = 7;
  static constexpr int64_t kHeaderBytes = 3;

  BPlusTree() = default;
  BPlusTree(BPlusTree&&) = default;
  BPlusTree& operator=(BPlusTree&&) = default;
  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;

  // Builds a tightly packed tree from cells sorted by ascending term.
  static Result<BPlusTree> BulkLoad(Disk* disk, std::string name,
                                    const std::vector<LeafCell>& cells);

  // Point lookup descending from the root; every page touched is a metered
  // disk read. NotFound if the term is absent.
  Result<LeafCell> Lookup(TermId term) const;

  // Reads the whole tree file front to back (the paper's one-time cost of
  // Bt_i pages) and returns all leaf cells in term order for in-memory use.
  Result<std::vector<LeafCell>> LoadAllCells() const;

  // Total pages in the tree file (leaves + internal levels).
  int64_t size_in_pages() const;

  // Pages occupied by leaves only — the paper's Bt_i ~ 9*T/P estimate
  // counts only the leaf level.
  int64_t leaf_pages() const { return leaf_pages_; }

  PageNumber root_page() const { return root_page_; }

  // Reattaches a tree to an existing file (catalog reopen).
  static BPlusTree FromParts(Disk* disk, FileId file,
                             PageNumber root_page, int64_t leaf_pages,
                             int64_t num_terms, int height);

  int height() const { return height_; }
  int64_t num_terms() const { return num_terms_; }
  Disk* disk() const { return disk_; }
  FileId file() const { return file_; }

 private:
  Disk* disk_ = nullptr;
  FileId file_ = kInvalidFileId;
  PageNumber root_page_ = -1;
  int64_t leaf_pages_ = 0;
  int64_t num_terms_ = 0;
  int height_ = 0;  // number of levels; 1 = root is a leaf
};

// In-memory image of a B+tree's leaf level, produced after paying the
// one-time LoadAllCells cost. Lookups are unmetered binary searches; also
// answers "what is the byte length of term t's inverted entry" from the
// distance to the next cell's address.
class ResidentTermDirectory {
 public:
  // `cells` must be sorted by term; `file_size_bytes` is the total byte
  // length of the inverted file (end address of the last entry).
  ResidentTermDirectory(std::vector<BPlusTree::LeafCell> cells,
                        int64_t file_size_bytes);

  std::optional<BPlusTree::LeafCell> Lookup(TermId term) const;

  // Byte length of the inverted entry of `term`, or nullopt if absent.
  std::optional<int64_t> EntryLength(TermId term) const;

  int64_t size() const { return static_cast<int64_t>(cells_.size()); }
  const std::vector<BPlusTree::LeafCell>& cells() const { return cells_; }

 private:
  int64_t IndexOf(TermId term) const;  // -1 if absent

  std::vector<BPlusTree::LeafCell> cells_;
  int64_t file_size_bytes_;
};

}  // namespace textjoin

#endif  // TEXTJOIN_INDEX_BTREE_H_
