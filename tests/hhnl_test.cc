#include <gtest/gtest.h>

#include "storage/disk_manager.h"
#include "join/hhnl.h"
#include "test_util.h"

namespace textjoin {
namespace {

using testing_util::BruteForceJoin;
using testing_util::MakeFixture;
using testing_util::RandomCollection;

std::unique_ptr<testing_util::JoinFixture> SmallFixture(SimulatedDisk* disk) {
  auto inner = RandomCollection(disk, "c1", 40, 6, 50, 101);
  auto outer = RandomCollection(disk, "c2", 25, 5, 50, 202);
  return MakeFixture(disk, std::move(inner), std::move(outer));
}

TEST(HhnlTest, MatchesBruteForce) {
  SimulatedDisk disk(256);
  auto f = SmallFixture(&disk);
  JoinSpec spec;
  spec.lambda = 4;
  JoinContext ctx = f->Context(/*buffer_pages=*/50);

  HhnlJoin join;
  auto got = join.Run(ctx, spec);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, BruteForceJoin(f->inner, f->outer, f->simctx, spec));
}

TEST(HhnlTest, TinyBufferForcesManyBatchesSameResult) {
  SimulatedDisk disk(256);
  auto f = SmallFixture(&disk);
  JoinSpec spec;
  spec.lambda = 3;

  HhnlJoin join;
  JoinContext big = f->Context(1000);
  JoinContext small = f->Context(3);
  ASSERT_GE(HhnlJoin::BatchSize(big, spec), f->outer.num_documents());
  ASSERT_LT(HhnlJoin::BatchSize(small, spec), f->outer.num_documents());

  auto r1 = join.Run(big, spec);
  auto r2 = join.Run(small, spec);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(*r1, *r2);
}

TEST(HhnlTest, MoreBatchesCostMoreInnerScans) {
  SimulatedDisk disk(256);
  auto f = SmallFixture(&disk);
  JoinSpec spec;
  spec.lambda = 3;
  HhnlJoin join;

  disk.ResetStats();
  disk.ResetHeads();
  ASSERT_TRUE(join.Run(f->Context(1000), spec).ok());
  int64_t one_scan = disk.stats().total_reads();

  disk.ResetStats();
  disk.ResetHeads();
  ASSERT_TRUE(join.Run(f->Context(3), spec).ok());
  int64_t many_scans = disk.stats().total_reads();
  EXPECT_GT(many_scans, one_scan);
}

TEST(HhnlTest, InfeasibleBufferErrors) {
  SimulatedDisk disk(256);
  auto f = SmallFixture(&disk);
  JoinSpec spec;
  HhnlJoin join;
  auto r = join.Run(f->Context(1), spec);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST(HhnlTest, OuterSubset) {
  SimulatedDisk disk(256);
  auto f = SmallFixture(&disk);
  JoinSpec spec;
  spec.lambda = 3;
  spec.outer_subset = {2, 7, 11, 19};
  HhnlJoin join;
  auto got = join.Run(f->Context(50), spec);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->size(), 4u);
  EXPECT_EQ(*got, BruteForceJoin(f->inner, f->outer, f->simctx, spec));
}

TEST(HhnlTest, InnerSubsetFiltersMatches) {
  SimulatedDisk disk(256);
  auto f = SmallFixture(&disk);
  JoinSpec spec;
  spec.lambda = 5;
  spec.inner_subset = {0, 1, 2, 3, 4, 5, 6, 7};
  HhnlJoin join;
  auto got = join.Run(f->Context(50), spec);
  ASSERT_TRUE(got.ok());
  for (const OuterMatches& om : *got) {
    for (const Match& m : om.matches) EXPECT_LT(m.doc, 8u);
  }
  EXPECT_EQ(*got, BruteForceJoin(f->inner, f->outer, f->simctx, spec));
}

TEST(HhnlTest, TinyInnerSubsetUsesSelectiveReads) {
  // A handful of selected inner documents in a large inner collection:
  // reading them with positioned I/Os beats a full scan
  // (m1 * ceil(S1) * alpha < D1), so the executor must not touch most of
  // the collection's pages.
  SimulatedDisk disk(256);
  auto inner = RandomCollection(&disk, "big_inner", 400, 6, 80, 505);
  auto outer = RandomCollection(&disk, "c2", 10, 5, 80, 606);
  auto f = MakeFixture(&disk, std::move(inner), std::move(outer));
  JoinSpec spec;
  spec.lambda = 3;
  spec.inner_subset = {3, 77, 311};

  HhnlJoin join;
  disk.ResetStats();
  disk.ResetHeads();
  auto got = join.Run(f->Context(100), spec);
  ASSERT_TRUE(got.ok());
  const IoStats join_io = disk.stats();
  EXPECT_EQ(*got, BruteForceJoin(f->inner, f->outer, f->simctx, spec));
  // Far fewer pages than a full inner scan (47 pages) would need; only
  // the outer scan plus a few positioned reads per batch.
  EXPECT_LT(join_io.total_reads(),
            f->inner.size_in_pages() / 2 + f->outer.size_in_pages() + 2);
  EXPECT_GE(join_io.random_reads, 3);
}

TEST(HhnlTest, BackwardOrderSameResults) {
  SimulatedDisk disk(256);
  auto f = SmallFixture(&disk);
  JoinSpec spec;
  spec.lambda = 4;
  HhnlJoin forward;
  HhnlJoin backward(HhnlJoin::Options{/*backward=*/true});
  auto r1 = forward.Run(f->Context(100), spec);
  auto r2 = backward.Run(f->Context(100), spec);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok()) << r2.status();
  EXPECT_EQ(*r1, *r2);
}

TEST(HhnlTest, BackwardCheaperWhenInnerTiny) {
  // The paper: the backward order can be more efficient when C1 is much
  // smaller than C2 (one pass over each collection instead of repeated
  // inner scans).
  SimulatedDisk disk(256);
  auto inner = RandomCollection(&disk, "small", 5, 6, 50, 303);
  auto outer = RandomCollection(&disk, "large", 200, 6, 50, 404);
  auto f = MakeFixture(&disk, std::move(inner), std::move(outer));
  JoinSpec spec;
  spec.lambda = 2;

  HhnlJoin forward;
  HhnlJoin backward(HhnlJoin::Options{/*backward=*/true});
  JoinContext ctx = f->Context(40);

  disk.ResetStats();
  disk.ResetHeads();
  auto r1 = forward.Run(ctx, spec);
  ASSERT_TRUE(r1.ok());
  double fwd_cost = disk.stats().Cost(5.0);

  disk.ResetStats();
  disk.ResetHeads();
  auto r2 = backward.Run(ctx, spec);
  ASSERT_TRUE(r2.ok());
  double bwd_cost = disk.stats().Cost(5.0);

  EXPECT_EQ(*r1, *r2);
  EXPECT_LE(bwd_cost, fwd_cost);
}

TEST(HhnlTest, LambdaZeroGivesEmptyMatches) {
  SimulatedDisk disk(256);
  auto f = SmallFixture(&disk);
  JoinSpec spec;
  spec.lambda = 0;
  HhnlJoin join;
  auto got = join.Run(f->Context(50), spec);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(static_cast<int64_t>(got->size()), f->outer.num_documents());
  for (const OuterMatches& om : *got) EXPECT_TRUE(om.matches.empty());
}

TEST(HhnlTest, LambdaLargerThanCollection) {
  SimulatedDisk disk(256);
  auto f = SmallFixture(&disk);
  JoinSpec spec;
  spec.lambda = 1000;
  HhnlJoin join;
  auto got = join.Run(f->Context(200), spec);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, BruteForceJoin(f->inner, f->outer, f->simctx, spec));
}

}  // namespace
}  // namespace textjoin
