#ifndef TEXTJOIN_STORAGE_DISK_H_
#define TEXTJOIN_STORAGE_DISK_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "storage/io_stats.h"
#include "storage/page.h"

namespace textjoin {

class QueryGovernor;

// The page-device abstraction every storage consumer reads through:
// collections, inverted files, B+trees, page streams and the buffer pool
// all hold a Disk*, so a decorated device (storage/reliable_disk.h adds
// checksums and retry) slots in without the consumers noticing.
//
// SimulatedDisk (storage/disk_manager.h) is the base implementation; its
// snapshot/raw-image and fault-injection surfaces stay on the concrete
// class because they describe the simulated device itself, not the
// abstraction.
class Disk {
 public:
  virtual ~Disk() = default;

  virtual int64_t page_size() const = 0;

  // Creates an empty file and returns its id. Names are for debugging and
  // snapshot identity; they need not be unique.
  virtual FileId CreateFile(std::string name) = 0;

  // Appends a page (exactly page_size bytes, or shorter — zero padded) and
  // returns its page number.
  virtual Result<PageNumber> AppendPage(FileId file, const uint8_t* data,
                                        int64_t size) = 0;

  // Overwrites an existing page.
  virtual Status WritePage(FileId file, PageNumber page, const uint8_t* data,
                           int64_t size) = 0;

  // Reads one page into `out` (page_size bytes), metering the access.
  virtual Status ReadPage(FileId file, PageNumber page, uint8_t* out) = 0;

  // Reads `count` consecutive pages starting at `first`. The first page is
  // metered by the usual position rule; subsequent pages are sequential.
  virtual Status ReadRun(FileId file, PageNumber first, int64_t count,
                         uint8_t* out) {
    for (int64_t i = 0; i < count; ++i) {
      TEXTJOIN_RETURN_IF_ERROR(ReadPage(file, first + i, out + i * page_size()));
    }
    return Status::OK();
  }

  // Maintenance read: fetches the page without metering, fault injection
  // or recovery (the DMA path a scrubber or checksum-adoption pass uses).
  virtual Status PeekPage(FileId file, PageNumber page, uint8_t* out) const = 0;

  // Number of pages currently in the file.
  virtual Result<int64_t> FileSizeInPages(FileId file) const = 0;

  virtual const std::string& FileName(FileId file) const = 0;

  // First file with this exact name, or NotFound. Used when reopening a
  // snapshot (names are the durable identifiers).
  virtual Result<FileId> FindFile(const std::string& name) const = 0;

  virtual int64_t file_count() const = 0;

  // I/O counters since the last ResetStats. A decorated device folds its
  // recovery counters (IoStats::retry) into this view.
  virtual const IoStats& stats() const = 0;
  virtual void ResetStats() = 0;

  // Forgets per-file head positions, so the next read of every file is
  // random. Useful between experiment repetitions.
  virtual void ResetHeads() = 0;

  // When true, every read is counted as random (busy device).
  virtual void set_interference(bool on) = 0;
  virtual bool interference() const = 0;

  // The governor of the query currently reading through this device, or
  // nullptr. The page-read funnels (PageStreamReader, SequentialByteReader,
  // BufferPool::Pin) poll it so I/O-bound phases observe cancellation and
  // deadlines within one page read; the recovery layer charges its
  // simulated retry backoff against its deadline. Default: not supported.
  virtual void set_governor(QueryGovernor* governor) { (void)governor; }
  virtual QueryGovernor* governor() const { return nullptr; }
};

// Installs a governor on a device for one query's scope and restores the
// previous one on exit (queries execute serially; nesting happens when a
// governed Database call runs a sub-read through the same device).
class ScopedDiskGovernor {
 public:
  ScopedDiskGovernor(Disk* disk, QueryGovernor* governor) : disk_(disk) {
    if (disk_ != nullptr) {
      previous_ = disk_->governor();
      disk_->set_governor(governor);
    }
  }
  ~ScopedDiskGovernor() {
    if (disk_ != nullptr) disk_->set_governor(previous_);
  }
  ScopedDiskGovernor(const ScopedDiskGovernor&) = delete;
  ScopedDiskGovernor& operator=(const ScopedDiskGovernor&) = delete;

 private:
  Disk* disk_;
  QueryGovernor* previous_ = nullptr;
};

}  // namespace textjoin

#endif  // TEXTJOIN_STORAGE_DISK_H_
