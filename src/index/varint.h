#ifndef TEXTJOIN_INDEX_VARINT_H_
#define TEXTJOIN_INDEX_VARINT_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace textjoin {

// LEB128 variable-length unsigned integers, used by the compressed
// inverted-entry format (delta-encoded document numbers).

inline void PutVarint(std::vector<uint8_t>* dst, uint64_t v) {
  while (v >= 0x80) {
    dst->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  dst->push_back(static_cast<uint8_t>(v));
}

// Decodes one varint from [*p, limit); advances *p past it on success.
// A continuation run past `limit` or past 10 bytes (shift >= 64 would
// silently wrap the value) is a decode error, not undefined behavior:
// corrupt pages reach this path through the chaos suite's bit-flip
// faults, so it must fail closed with kDataLoss.
inline Status GetVarint(const uint8_t** p, const uint8_t* limit,
                        uint64_t* v) {
  uint64_t value = 0;
  int shift = 0;
  const uint8_t* q = *p;
  while (true) {
    if (q >= limit) {
      return Status::DataLoss("varint runs past the end of its buffer");
    }
    if (shift >= 64) {
      return Status::DataLoss("varint continuation exceeds 64 bits");
    }
    const uint8_t byte = *q++;
    value |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  *p = q;
  *v = value;
  return Status::OK();
}

// Encoded size of v in bytes.
inline int VarintLength(uint64_t v) {
  int n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

}  // namespace textjoin

#endif  // TEXTJOIN_INDEX_VARINT_H_
