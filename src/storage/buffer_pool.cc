#include "storage/buffer_pool.h"

#include "common/logging.h"
#include "exec/governor.h"

namespace textjoin {

BufferPool::BufferPool(Disk* disk, int64_t capacity_pages)
    : disk_(disk), capacity_(capacity_pages) {
  TEXTJOIN_CHECK_GT(capacity_, 0);
}

Result<const uint8_t*> BufferPool::Pin(FileId file, PageNumber page) {
  return PinFor(std::string(), file, page);
}

Result<const uint8_t*> BufferPool::PinFor(const std::string& tenant,
                                          FileId file, PageNumber page) {
  // Polled on the hit path too: a pin that never touches the device must
  // still observe cancellation, or a fully cached loop would run forever.
  if (QueryGovernor* governor = disk_->governor(); governor != nullptr) {
    TEXTJOIN_RETURN_IF_ERROR(governor->PollIo());
  }
  if (!tenant.empty() && partitioned() && quotas_.count(tenant) == 0) {
    return Status::InvalidArgument("unknown tenant '" + tenant +
                                   "' in partitioned buffer pool");
  }
  Key key{file, page};
  auto it = frames_.find(key);
  if (it != frames_.end()) {
    // A hit is free for every tenant: cached read-only pages are shared;
    // the charge stays with the tenant that faulted the page in.
    ++hits_;
    Frame& f = it->second;
    if (f.in_lru) {
      lru_.erase(f.lru_pos);
      f.in_lru = false;
    }
    ++f.pins;
    return static_cast<const uint8_t*>(f.bytes.data());
  }
  ++misses_;

  // Read before evicting: a failed fetch must leave the pool exactly as it
  // was — no leaked frame, and no victim evicted for a page that never
  // arrived.
  Frame f;
  f.bytes.resize(static_cast<size_t>(disk_->page_size()));
  TEXTJOIN_RETURN_IF_ERROR(disk_->ReadPage(file, page, f.bytes.data()));

  // Quota first: a tenant at its quota must make room out of its own
  // frames before the new page is charged to it. This keeps the hard
  // invariant tenant_frames(t) <= tenant_quota(t) at every instant.
  const bool charged = !tenant.empty() && partitioned();
  if (charged && owned_frames_[tenant] >= quotas_.find(tenant)->second) {
    TEXTJOIN_RETURN_IF_ERROR(EvictOwn(tenant));
  }
  if (static_cast<int64_t>(frames_.size()) >= capacity_) {
    TEXTJOIN_RETURN_IF_ERROR(EvictPreferring(tenant));
  }
  f.pins = 1;
  if (charged) {
    f.owner = tenant;
    ++owned_frames_[tenant];
  }
  auto [pos, inserted] = frames_.emplace(key, std::move(f));
  TEXTJOIN_CHECK(inserted);
  return static_cast<const uint8_t*>(pos->second.bytes.data());
}

Status BufferPool::Unpin(FileId file, PageNumber page) {
  auto it = frames_.find(Key{file, page});
  if (it == frames_.end()) {
    return Status::NotFound("unpin of uncached page");
  }
  Frame& f = it->second;
  if (f.pins <= 0) {
    return Status::FailedPrecondition("unpin of unpinned page");
  }
  if (--f.pins == 0) {
    lru_.push_front(it->first);
    f.lru_pos = lru_.begin();
    f.in_lru = true;
  }
  return Status::OK();
}

void BufferPool::DropFrame(const Key& key) {
  auto it = frames_.find(key);
  TEXTJOIN_CHECK(it != frames_.end());
  if (!it->second.owner.empty()) {
    auto o = owned_frames_.find(it->second.owner);
    if (o != owned_frames_.end() && o->second > 0) --o->second;
  }
  frames_.erase(it);
}

Status BufferPool::EvictOne() {
  if (lru_.empty()) {
    return Status::ResourceExhausted("all buffer frames are pinned");
  }
  Key victim = lru_.back();
  lru_.pop_back();
  DropFrame(victim);
  return Status::OK();
}

Status BufferPool::EvictPreferring(const std::string& tenant) {
  if (!tenant.empty() && partitioned()) {
    // First pass: the requesting tenant's own unpinned frames, LRU first.
    // Evicting your own coldest page before touching anyone else's is what
    // makes the quotas isolation and not just accounting.
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
      auto f = frames_.find(*it);
      TEXTJOIN_CHECK(f != frames_.end());
      if (f->second.owner == tenant) {
        Key victim = *it;
        lru_.erase(std::next(it).base());
        DropFrame(victim);
        return Status::OK();
      }
    }
  }
  return EvictOne();
}

Status BufferPool::EvictOwn(const std::string& tenant) {
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    auto f = frames_.find(*it);
    TEXTJOIN_CHECK(f != frames_.end());
    if (f->second.owner == tenant) {
      Key victim = *it;
      lru_.erase(std::next(it).base());
      DropFrame(victim);
      return Status::OK();
    }
  }
  return Status::ResourceExhausted(
      "tenant '" + tenant +
      "' is at its page quota with every owned frame pinned");
}

Status BufferPool::Partition(const std::vector<TenantQuota>& quotas) {
  for (const auto& [key, frame] : frames_) {
    if (frame.pins > 0) {
      return Status::FailedPrecondition(
          "cannot repartition the buffer pool while pages are pinned");
    }
  }
  int64_t total = 0;
  std::map<std::string, int64_t> next;
  for (const TenantQuota& q : quotas) {
    if (q.tenant.empty() || q.pages <= 0) {
      return Status::InvalidArgument(
          "tenant quotas need a name and a positive page count");
    }
    if (!next.emplace(q.tenant, q.pages).second) {
      return Status::InvalidArgument("duplicate tenant '" + q.tenant +
                                     "' in partitioning");
    }
    total += q.pages;
  }
  if (total > capacity_) {
    return Status::InvalidArgument(
        "tenant quotas (" + std::to_string(total) +
        " pages) exceed the pool capacity (" + std::to_string(capacity_) +
        ")");
  }
  // Existing cached pages survive but are unowned under the new regime:
  // no tenant is charged for work done before the partitioning existed.
  for (auto& [key, frame] : frames_) frame.owner.clear();
  owned_frames_.clear();
  quotas_ = std::move(next);
  return Status::OK();
}

int64_t BufferPool::tenant_quota(const std::string& tenant) const {
  auto it = quotas_.find(tenant);
  return it == quotas_.end() ? -1 : it->second;
}

int64_t BufferPool::tenant_frames(const std::string& tenant) const {
  auto it = owned_frames_.find(tenant);
  return it == owned_frames_.end() ? 0 : it->second;
}

int64_t BufferPool::tenant_pinned_frames(const std::string& tenant) const {
  int64_t n = 0;
  for (const auto& [key, frame] : frames_) {
    if (frame.owner == tenant && frame.pins > 0) ++n;
  }
  return n;
}

Status BufferPool::FlushAll() {
  for (const auto& [key, frame] : frames_) {
    if (frame.pins > 0) {
      return Status::FailedPrecondition("page still pinned during FlushAll");
    }
  }
  frames_.clear();
  lru_.clear();
  owned_frames_.clear();
  return Status::OK();
}

}  // namespace textjoin
