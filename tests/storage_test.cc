#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

#include "storage/coding.h"
#include "storage/disk_manager.h"
#include "storage/page_stream.h"

namespace textjoin {
namespace {

TEST(CodingTest, Fixed16RoundTrip) {
  std::vector<uint8_t> buf;
  PutFixed16(&buf, 0xBEEF);
  ASSERT_EQ(buf.size(), 2u);
  EXPECT_EQ(GetFixed16(buf.data()), 0xBEEF);
}

TEST(CodingTest, Fixed24RoundTrip) {
  std::vector<uint8_t> buf;
  PutFixed24(&buf, 0xABCDEF);
  ASSERT_EQ(buf.size(), 3u);
  EXPECT_EQ(GetFixed24(buf.data()), 0xABCDEFu);
}

TEST(CodingTest, Fixed24TruncatesHighByte) {
  std::vector<uint8_t> buf;
  PutFixed24(&buf, 0xFFABCDEF);  // top byte dropped: 3-byte field
  EXPECT_EQ(GetFixed24(buf.data()), 0xABCDEFu);
}

TEST(CodingTest, Fixed32And64RoundTrip) {
  std::vector<uint8_t> buf;
  PutFixed32(&buf, 0xDEADBEEF);
  PutFixed64(&buf, 0x0123456789ABCDEFull);
  EXPECT_EQ(GetFixed32(buf.data()), 0xDEADBEEFu);
  EXPECT_EQ(GetFixed64(buf.data() + 4), 0x0123456789ABCDEFull);
}

TEST(SimulatedDiskTest, AppendAndRead) {
  SimulatedDisk disk(64);
  FileId f = disk.CreateFile("f");
  std::vector<uint8_t> data(64);
  std::iota(data.begin(), data.end(), 0);
  auto page = disk.AppendPage(f, data.data(), 64);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(page.value(), 0);

  std::vector<uint8_t> out(64);
  ASSERT_TRUE(disk.ReadPage(f, 0, out.data()).ok());
  EXPECT_EQ(out, data);
}

TEST(SimulatedDiskTest, ShortAppendZeroPads) {
  SimulatedDisk disk(16);
  FileId f = disk.CreateFile("f");
  uint8_t byte = 0xAA;
  ASSERT_TRUE(disk.AppendPage(f, &byte, 1).ok());
  std::vector<uint8_t> out(16);
  ASSERT_TRUE(disk.ReadPage(f, 0, out.data()).ok());
  EXPECT_EQ(out[0], 0xAA);
  for (int i = 1; i < 16; ++i) EXPECT_EQ(out[i], 0);
}

TEST(SimulatedDiskTest, SequentialClassification) {
  SimulatedDisk disk(16);
  FileId f = disk.CreateFile("f");
  std::vector<uint8_t> z(16, 0);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(disk.AppendPage(f, z.data(), 16).ok());
  disk.ResetStats();

  std::vector<uint8_t> out(16);
  // 0,1,2,3,4 in order: first is positioned, rest sequential.
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(disk.ReadPage(f, i, out.data()).ok());
  EXPECT_EQ(disk.stats().random_reads, 1);
  EXPECT_EQ(disk.stats().sequential_reads, 4);
}

TEST(SimulatedDiskTest, BackwardOrSkipIsRandom) {
  SimulatedDisk disk(16);
  FileId f = disk.CreateFile("f");
  std::vector<uint8_t> z(16, 0);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(disk.AppendPage(f, z.data(), 16).ok());
  disk.ResetStats();

  std::vector<uint8_t> out(16);
  ASSERT_TRUE(disk.ReadPage(f, 2, out.data()).ok());  // random
  ASSERT_TRUE(disk.ReadPage(f, 1, out.data()).ok());  // backward: random
  ASSERT_TRUE(disk.ReadPage(f, 4, out.data()).ok());  // skip: random
  ASSERT_TRUE(disk.ReadPage(f, 4, out.data()).ok());  // same page: random
  EXPECT_EQ(disk.stats().random_reads, 4);
  EXPECT_EQ(disk.stats().sequential_reads, 0);
}

TEST(SimulatedDiskTest, PerFileHeads) {
  SimulatedDisk disk(16);
  FileId a = disk.CreateFile("a");
  FileId b = disk.CreateFile("b");
  std::vector<uint8_t> z(16, 0);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(disk.AppendPage(a, z.data(), 16).ok());
    ASSERT_TRUE(disk.AppendPage(b, z.data(), 16).ok());
  }
  disk.ResetStats();
  std::vector<uint8_t> out(16);
  // Interleaved forward scans of two files: each file behaves as if it had
  // a dedicated drive, so only the first page of each is positioned.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(disk.ReadPage(a, i, out.data()).ok());
    ASSERT_TRUE(disk.ReadPage(b, i, out.data()).ok());
  }
  EXPECT_EQ(disk.stats().random_reads, 2);
  EXPECT_EQ(disk.stats().sequential_reads, 4);
}

TEST(SimulatedDiskTest, InterferenceMakesAllReadsRandom) {
  SimulatedDisk disk(16);
  FileId f = disk.CreateFile("f");
  std::vector<uint8_t> z(16, 0);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(disk.AppendPage(f, z.data(), 16).ok());
  disk.set_interference(true);
  disk.ResetStats();
  std::vector<uint8_t> out(16);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(disk.ReadPage(f, i, out.data()).ok());
  EXPECT_EQ(disk.stats().random_reads, 4);
  EXPECT_EQ(disk.stats().sequential_reads, 0);
}

TEST(SimulatedDiskTest, ErrorsOnBadAccess) {
  SimulatedDisk disk(16);
  std::vector<uint8_t> out(16);
  EXPECT_FALSE(disk.ReadPage(0, 0, out.data()).ok());  // no file
  FileId f = disk.CreateFile("f");
  EXPECT_FALSE(disk.ReadPage(f, 0, out.data()).ok());  // empty file
  EXPECT_FALSE(disk.AppendPage(f, out.data(), 99).ok());  // oversized
  EXPECT_FALSE(disk.WritePage(f, 3, out.data(), 4).ok());  // no such page
}

TEST(SimulatedDiskTest, WritePageOverwrites) {
  SimulatedDisk disk(8);
  FileId f = disk.CreateFile("f");
  std::vector<uint8_t> a(8, 1), b(8, 2), out(8);
  ASSERT_TRUE(disk.AppendPage(f, a.data(), 8).ok());
  ASSERT_TRUE(disk.WritePage(f, 0, b.data(), 8).ok());
  ASSERT_TRUE(disk.ReadPage(f, 0, out.data()).ok());
  EXPECT_EQ(out, b);
}

TEST(SimulatedDiskTest, ResetHeadsForcesRandom) {
  SimulatedDisk disk(16);
  FileId f = disk.CreateFile("f");
  std::vector<uint8_t> z(16, 0);
  for (int i = 0; i < 2; ++i) ASSERT_TRUE(disk.AppendPage(f, z.data(), 16).ok());
  std::vector<uint8_t> out(16);
  ASSERT_TRUE(disk.ReadPage(f, 0, out.data()).ok());
  disk.ResetHeads();
  disk.ResetStats();
  ASSERT_TRUE(disk.ReadPage(f, 1, out.data()).ok());
  EXPECT_EQ(disk.stats().random_reads, 1);
}

TEST(IoStatsTest, CostWeighsRandomByAlpha) {
  IoStats s;
  s.sequential_reads = 10;
  s.random_reads = 3;
  EXPECT_DOUBLE_EQ(s.Cost(5.0), 25.0);
  EXPECT_DOUBLE_EQ(s.Cost(1.0), 13.0);
}

TEST(IoStatsTest, Arithmetic) {
  IoStats a{10, 3, 1, {}}, b{4, 1, 0, {}};
  IoStats sum = a + b;
  EXPECT_EQ(sum.sequential_reads, 14);
  EXPECT_EQ(sum.random_reads, 4);
  IoStats diff = sum - b;
  EXPECT_EQ(diff, a);
}

TEST(PageStreamTest, RoundTripAcrossPages) {
  SimulatedDisk disk(16);
  FileId f = disk.CreateFile("f");
  PageStreamWriter writer(&disk, f);
  std::vector<uint8_t> data(100);
  std::iota(data.begin(), data.end(), 0);
  int64_t off1 = writer.Append(data.data(), 40);
  int64_t off2 = writer.Append(data.data() + 40, 60);
  EXPECT_EQ(off1, 0);
  EXPECT_EQ(off2, 40);
  ASSERT_TRUE(writer.Finish().ok());
  EXPECT_EQ(disk.FileSizeInPages(f).value(), 7);  // ceil(100/16)

  PageStreamReader reader(&disk, f);
  std::vector<uint8_t> out;
  ASSERT_TRUE(reader.Read(0, 100, &out).ok());
  EXPECT_EQ(out, data);
  // A range crossing a page boundary.
  ASSERT_TRUE(reader.Read(14, 4, &out).ok());
  EXPECT_EQ(out, std::vector<uint8_t>({14, 15, 16, 17}));
}

TEST(PageStreamTest, FinishTwiceFails) {
  SimulatedDisk disk(16);
  PageStreamWriter writer(&disk, disk.CreateFile("f"));
  EXPECT_TRUE(writer.Finish().ok());
  EXPECT_FALSE(writer.Finish().ok());
}

TEST(SequentialByteReaderTest, WholeStreamOnePagePerPage) {
  SimulatedDisk disk(16);
  FileId f = disk.CreateFile("f");
  PageStreamWriter writer(&disk, f);
  std::vector<uint8_t> data(64);
  std::iota(data.begin(), data.end(), 0);
  writer.Append(data);
  ASSERT_TRUE(writer.Finish().ok());
  disk.ResetStats();

  SequentialByteReader reader(&disk, f);
  std::vector<uint8_t> out(64);
  // Read in odd-sized chunks; page boundaries must not be re-read.
  ASSERT_TRUE(reader.Read(10, out.data()).ok());
  ASSERT_TRUE(reader.Read(30, out.data() + 10).ok());
  ASSERT_TRUE(reader.Read(24, out.data() + 40).ok());
  EXPECT_EQ(out, data);
  EXPECT_EQ(disk.stats().total_reads(), 4);  // 64/16 pages, each once
  EXPECT_EQ(disk.stats().sequential_reads, 3);
}

TEST(SequentialByteReaderTest, SkipAvoidsUntouchedPages) {
  SimulatedDisk disk(16);
  FileId f = disk.CreateFile("f");
  PageStreamWriter writer(&disk, f);
  std::vector<uint8_t> data(160, 7);
  writer.Append(data);
  ASSERT_TRUE(writer.Finish().ok());
  disk.ResetStats();

  SequentialByteReader reader(&disk, f);
  std::vector<uint8_t> out(16);
  ASSERT_TRUE(reader.Read(8, out.data()).ok());    // page 0
  ASSERT_TRUE(reader.Skip(96).ok());               // lands at byte 104
  ASSERT_TRUE(reader.Read(8, out.data()).ok());    // bytes 104..111: page 6
  EXPECT_EQ(disk.stats().total_reads(), 2);        // pages 0 and 6 only
}

}  // namespace
}  // namespace textjoin
