#ifndef TEXTJOIN_KERNEL_GROUP_VARINT_H_
#define TEXTJOIN_KERNEL_GROUP_VARINT_H_

#include <cstdint>
#include <vector>

#include "text/types.h"

namespace textjoin {
namespace kernel {

// Group-varint posting-block layout (PostingCompression::kGroupVarint).
//
// One block of `count` cells encodes 2*count values, interleaved
//   gap0, w0, gap1, w1, ...
// where gap0 is the block's first document number itself (delta restart,
// exactly like kDeltaVarint) and later gaps are deltas. Values are cut
// into groups of four; each group is described by one CONTROL byte whose
// 2-bit fields (value k at bits 2k..2k+1) give the value's byte length
// minus one, so a value occupies 1..4 little-endian bytes. All control
// bytes are packed at the block's front, payload bytes follow:
//
//   [ctrl 0][ctrl 1]...[ctrl G-1][payload of group 0][payload of group 1]...
//
// with G = GvControlBytes(count). When 2*count is not a multiple of four
// (odd cell counts — only ever the entry's last block), the final group is
// partial: its unused control fields MUST be zero and contribute no
// payload, which the decoder enforces (a bit flip in the slack bits is
// corruption, not silence).
//
// What the split layout buys: a decoder reads the control byte and then
// knows the positions of all four values at once — no per-byte
// continuation-bit branches — and a single pshufb against a 256-entry
// shuffle table expands the group into four dwords in one instruction.
// The front-loaded control region keeps the payload contiguous, so those
// 16-byte loads stream.

// Control bytes for a block of `count` cells (2 values per cell, 4 values
// per control byte).
inline constexpr int64_t GvControlBytes(int64_t count) {
  return (2 * count + 3) / 4;
}

// Largest possible encoding of a block of `count` cells: every value at
// the full 4 bytes.
inline constexpr int64_t GvMaxEncodedBytes(int64_t count) {
  return GvControlBytes(count) + 8 * count;
}

// Appends one encoded block to `out`. `cells` must be sorted ascending by
// document number (gaps of cells past the first must fit uint32, which
// 24-bit document numbers guarantee).
void GvEncodeBlock(const ICell* cells, int64_t count,
                   std::vector<uint8_t>* out);

// Per-control-byte decode tables, shared by every dispatch level: the
// total payload length of the group and, for the SIMD variants, the
// pshufb mask that expands the group's packed bytes into four little-
// endian dwords (0x80 lanes zero-fill).
struct GvTables {
  alignas(64) uint8_t shuffle[256][16];
  uint8_t length[256];  // payload bytes of the whole group (4..16)
};

const GvTables& GetGvTables();

}  // namespace kernel
}  // namespace textjoin

#endif  // TEXTJOIN_KERNEL_GROUP_VARINT_H_
