#ifndef TEXTJOIN_JOIN_HHNL_H_
#define TEXTJOIN_JOIN_HHNL_H_

#include "join/executor.h"

namespace textjoin {

// Horizontal-Horizontal Nested Loop (Section 4.1): uses only the document
// collections. In forward order, batches of
//   X = floor((B - ceil(S1)) / (S2 + 4*lambda/P))
// outer (C2) documents are held in memory; for each batch the inner
// collection C1 is scanned once and every inner document is compared with
// every batched outer document, updating per-outer-document top-lambda
// heaps.
//
// The backward order the paper mentions (process C1 as the outer loop;
// cheaper when C1 is much smaller than C2) is available as an option: it
// keeps a top-lambda heap for *every* participating C2 document for the
// whole run (the "many intermediate results" the paper notes), batching
//   X' = floor((B - ceil(S2) - 4*lambda*N2'/P) / S1)
// inner documents at a time and scanning C2 once per batch. Both orders
// produce identical results.
class HhnlJoin : public TextJoinAlgorithm {
 public:
  struct Options {
    bool backward = false;
  };

  HhnlJoin() : HhnlJoin(Options{}) {}
  explicit HhnlJoin(Options options) : options_(options) {}

  Algorithm kind() const override { return Algorithm::kHhnl; }

  Result<JoinResult> Run(const JoinContext& ctx,
                         const JoinSpec& spec) override;

  // The forward-order outer batch size the executor would use; exposed for
  // tests and model validation.
  static int64_t BatchSize(const JoinContext& ctx, const JoinSpec& spec);

 private:
  Result<JoinResult> RunForward(const JoinContext& ctx, const JoinSpec& spec);
  Result<JoinResult> RunBackward(const JoinContext& ctx,
                                 const JoinSpec& spec);

  Options options_;
};

}  // namespace textjoin

#endif  // TEXTJOIN_JOIN_HHNL_H_
