// A2: google-benchmark microbenchmarks of the computational kernels the
// executors are built from — the similarity merge, top-k maintenance,
// cell decoding, B+tree lookups and the HVNL accumulation loop.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "storage/disk_manager.h"
#include "common/logging.h"

#include "common/random.h"
#include "index/btree.h"
#include "index/inverted_file.h"
#include "join/pruning.h"
#include "join/similarity.h"
#include "join/topk.h"
#include "kernel/aligned.h"
#include "text/collection.h"

namespace textjoin {

// Process-wide heap-allocation counter, bumped by the replaced global
// operator new below. BM_BlockDecodeZeroAlloc diffs it across the timed
// loop to prove the steady-state block-decode path never allocates.
std::atomic<int64_t> g_heap_allocs{0};

namespace {

Document MakeDoc(int64_t terms, int64_t vocab, uint64_t seed) {
  Rng rng(seed);
  std::vector<char> used(static_cast<size_t>(vocab), 0);
  std::vector<DCell> cells;
  while (static_cast<int64_t>(cells.size()) < terms) {
    TermId t = static_cast<TermId>(rng.NextBounded(static_cast<uint64_t>(vocab)));
    if (used[t]) continue;
    used[t] = 1;
    cells.push_back(DCell{t, static_cast<Weight>(1 + rng.NextBounded(4))});
  }
  std::sort(cells.begin(), cells.end(),
            [](const DCell& a, const DCell& b) { return a.term < b.term; });
  return Document::FromSortedCells(std::move(cells));
}

void BM_DotSimilarity(benchmark::State& state) {
  const int64_t terms = state.range(0);
  Document a = MakeDoc(terms, terms * 4, 1);
  Document b = MakeDoc(terms, terms * 4, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DotSimilarity(a, b));
  }
  state.SetItemsProcessed(state.iterations() * terms * 2);
  state.SetBytesProcessed(state.iterations() * terms * 2 *
                          static_cast<int64_t>(sizeof(DCell)));
}
BENCHMARK(BM_DotSimilarity)->Arg(32)->Arg(64)->Arg(128)->Arg(512)->Arg(2048);

void BM_WeightedDot(benchmark::State& state) {
  const int64_t terms = state.range(0);
  SimulatedDisk disk(4096);
  CollectionBuilder b1(&disk, "a"), b2(&disk, "b");
  TEXTJOIN_CHECK_OK(
      b1.AddDocument(Document::FromSortedCells({{1, 1}})).status());
  TEXTJOIN_CHECK_OK(
      b2.AddDocument(Document::FromSortedCells({{1, 1}})).status());
  auto c1 = std::move(b1.Finish()).value();
  auto c2 = std::move(b2.Finish()).value();
  auto ctx = SimilarityContext::Create(c1, c2, {});
  Document a = MakeDoc(terms, terms * 4, 1);
  Document b = MakeDoc(terms, terms * 4, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(WeightedDot(a, b, *ctx));
  }
  state.SetItemsProcessed(state.iterations() * terms * 2);
  state.SetBytesProcessed(state.iterations() * terms * 2 *
                          static_cast<int64_t>(sizeof(DCell)));
}
BENCHMARK(BM_WeightedDot)->Arg(32)->Arg(64)->Arg(512);

// Minimal two-collection pair so the weighted kernels can resolve their
// configuration; the benchmark documents themselves never touch it.
struct TrivialCollections {
  explicit TrivialCollections(SimulatedDisk* disk)
      : c1(Build(disk, "ka")), c2(Build(disk, "kb")) {}
  static DocumentCollection Build(SimulatedDisk* disk, const char* name) {
    CollectionBuilder b(disk, name);
    TEXTJOIN_CHECK_OK(
        b.AddDocument(Document::FromSortedCells({{1, 1}})).status());
    return std::move(b.Finish()).value();
  }
  DocumentCollection c1, c2;
};

// The adaptive-merge decision in one picture: sweep the document length
// ratio with each intersection kernel. Linear pays short+long steps per
// pair, galloping short*(2*log2(ratio)+2); adaptive switches between them
// at kGallopSizeRatio. All three produce bit-identical sums.
void BM_MergeKernelSkew(benchmark::State& state) {
  const int64_t skew = state.range(0);
  const auto kernel = static_cast<MergeKernel>(state.range(1));
  const int64_t short_terms = 48;
  const int64_t long_terms = short_terms * skew;
  SimulatedDisk disk(4096);
  TrivialCollections cols(&disk);
  auto ctx = SimilarityContext::Create(cols.c1, cols.c2, {});
  Document a = MakeDoc(short_terms, long_terms * 4, 1);
  Document b = MakeDoc(long_terms, long_terms * 4, 2);
  int64_t steps = 0;
  for (auto _ : state) {
    DotDetail d = WeightedDotKernel(a, b, *ctx, kernel);
    steps = d.merge_steps;
    benchmark::DoNotOptimize(d.acc);
  }
  state.counters["merge_steps"] = static_cast<double>(steps);
  state.SetItemsProcessed(state.iterations() * steps);
  state.SetBytesProcessed(state.iterations() * (short_terms + long_terms) *
                          static_cast<int64_t>(sizeof(DCell)));
}
BENCHMARK(BM_MergeKernelSkew)
    ->ArgsProduct({{1, 4, 16, 64, 256},
                   {static_cast<int64_t>(MergeKernel::kLinear),
                    static_cast<int64_t>(MergeKernel::kGalloping),
                    static_cast<int64_t>(MergeKernel::kAdaptive)}});

// The bound-check fast path HHNL runs before each candidate merge: three
// precomputed scalars per side, two multiplies and a heap comparison —
// O(1) regardless of document size, which is the whole point of checking
// before merging.
void BM_PairBoundCheck(benchmark::State& state) {
  const int64_t terms = state.range(0);
  SimulatedDisk disk(4096);
  TrivialCollections cols(&disk);
  auto ctx = SimilarityContext::Create(cols.c1, cols.c2, {});
  Document outer = MakeDoc(terms, terms * 4, 1);
  DocBounds outer_bounds = ComputeDocBounds(outer, *ctx, 1.0);
  constexpr int kCandidates = 256;
  std::vector<DocBounds> cand;
  for (int i = 0; i < kCandidates; ++i) {
    cand.push_back(ComputeDocBounds(
        MakeDoc(terms, terms * 4, 100 + static_cast<uint64_t>(i)), *ctx, 1.0));
  }
  TopKAccumulator heap(20);
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    heap.Add(static_cast<DocId>(i),
             static_cast<double>(1 + rng.NextBounded(1000)));
  }
  for (auto _ : state) {
    int64_t pruned = 0;
    for (int i = 0; i < kCandidates; ++i) {
      const double ub = PairUpperBound(outer_bounds, cand[i]) * kBoundSlack;
      pruned += heap.CannotQualify(static_cast<DocId>(i), ub) ? 1 : 0;
    }
    benchmark::DoNotOptimize(pruned);
  }
  state.SetItemsProcessed(state.iterations() * kCandidates);
}
BENCHMARK(BM_PairBoundCheck)->Arg(32)->Arg(512)->Arg(2048);

void BM_TopKAdd(benchmark::State& state) {
  const int64_t k = state.range(0);
  Rng rng(7);
  std::vector<Match> stream;
  for (int i = 0; i < 10000; ++i) {
    stream.push_back(Match{static_cast<DocId>(i),
                           static_cast<double>(rng.NextBounded(1000) + 1)});
  }
  for (auto _ : state) {
    TopKAccumulator acc(k);
    for (const Match& m : stream) acc.Add(m.doc, m.score);
    benchmark::DoNotOptimize(acc.size());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_TopKAdd)->Arg(1)->Arg(20)->Arg(200);

void BM_DecodeICells(benchmark::State& state) {
  const int64_t n = state.range(0);
  std::vector<ICell> cells;
  for (int64_t i = 0; i < n; ++i) {
    cells.push_back(ICell{static_cast<DocId>(i), 2});
  }
  std::vector<uint8_t> bytes;
  EncodeICells(cells, &bytes);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        DecodeICells(bytes.data(), static_cast<int64_t>(bytes.size()), n));
  }
  state.SetBytesProcessed(state.iterations() * n * kICellBytes);
}
BENCHMARK(BM_DecodeICells)->Arg(64)->Arg(4096);

void BM_BTreeLookup(benchmark::State& state) {
  const int64_t n = state.range(0);
  SimulatedDisk disk(4096);
  std::vector<BPlusTree::LeafCell> cells;
  for (int64_t i = 0; i < n; ++i) {
    cells.push_back(BPlusTree::LeafCell{static_cast<TermId>(i * 2),
                                        static_cast<uint32_t>(i), 1});
  }
  auto tree = BPlusTree::BulkLoad(&disk, "t", cells);
  TEXTJOIN_CHECK_OK(tree.status());
  Rng rng(9);
  for (auto _ : state) {
    TermId t = static_cast<TermId>(rng.NextBounded(static_cast<uint64_t>(n)) * 2);
    benchmark::DoNotOptimize(tree->Lookup(t));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreeLookup)->Arg(1000)->Arg(100000);

// The steady-state block-decode path must not allocate: PostingCursor
// sizes its cell buffer once per entry and DecodePostingBlockInto fills
// caller-owned storage, so per-block decode work is pure compute. The
// replaced global operator new (bottom of this file) counts every heap
// allocation in the process; allocs_per_iter over 64 decoded blocks must
// read 0.000 for both representations.
void BM_BlockDecodeZeroAlloc(benchmark::State& state) {
  const auto compression = static_cast<PostingCompression>(state.range(0));
  const int64_t num_blocks = 64;
  std::vector<ICell> cells;
  for (int64_t i = 0; i < num_blocks * kPostingBlockCells; ++i) {
    cells.push_back(
        ICell{static_cast<DocId>(i * 3), static_cast<Weight>(1 + i % 9)});
  }
  std::vector<uint8_t> bytes;
  std::vector<InvertedFile::PostingBlockMeta> blocks;
  EncodePostings(cells, compression, &bytes, &blocks);
  kernel::ICellBuffer scratch(static_cast<size_t>(kPostingBlockCells));
  const auto decode_all = [&] {
    for (size_t b = 0; b < blocks.size(); ++b) {
      const int64_t end = b + 1 < blocks.size()
                              ? blocks[b + 1].offset_bytes
                              : static_cast<int64_t>(bytes.size());
      TEXTJOIN_CHECK_OK(DecodePostingBlockInto(
          bytes.data() + blocks[b].offset_bytes,
          end - blocks[b].offset_bytes, blocks[b].cell_count, compression,
          scratch.data()));
    }
  };
  decode_all();  // warm up before the allocation snapshot
  const int64_t allocs_before = g_heap_allocs.load(std::memory_order_relaxed);
  for (auto _ : state) {
    decode_all();
    benchmark::DoNotOptimize(scratch.data());
  }
  const int64_t allocs =
      g_heap_allocs.load(std::memory_order_relaxed) - allocs_before;
  state.counters["allocs_per_iter"] =
      static_cast<double>(allocs) /
      static_cast<double>(std::max<int64_t>(1, state.iterations()));
  state.SetItemsProcessed(state.iterations() * num_blocks *
                          kPostingBlockCells);
}
BENCHMARK(BM_BlockDecodeZeroAlloc)
    ->Arg(static_cast<int64_t>(PostingCompression::kDeltaVarint))
    ->Arg(static_cast<int64_t>(PostingCompression::kGroupVarint));

void BM_AccumulateEntry(benchmark::State& state) {
  // The HVNL inner loop: merge one inverted entry into the accumulator.
  const int64_t n = state.range(0);
  std::vector<ICell> entry;
  for (int64_t i = 0; i < n; ++i) {
    entry.push_back(ICell{static_cast<DocId>(i * 3), 2});
  }
  std::unordered_map<DocId, double> acc;
  for (auto _ : state) {
    for (const ICell& c : entry) {
      acc[c.doc] += static_cast<double>(c.weight) * 2.0;
    }
    benchmark::DoNotOptimize(acc.size());
    if (acc.size() > 500000) acc.clear();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_AccumulateEntry)->Arg(64)->Arg(1024);

}  // namespace
}  // namespace textjoin

// Counting replacements of the global allocation functions, for
// BM_BlockDecodeZeroAlloc. operator new[] funnels through operator new by
// default, so these four cover every heap allocation in the process.
void* operator new(std::size_t n) {
  textjoin::g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t n, std::align_val_t align) {
  textjoin::g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align), n ? n : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

BENCHMARK_MAIN();
