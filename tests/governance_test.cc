// Query-lifecycle governance: cooperative cancellation at randomized
// checkpoints, deadline enforcement, memory-budget degradation with
// bit-identical results, and admission control / load shedding.
//
// `scripts/check.sh stress` re-runs this binary under several values of
// TEXTJOIN_STRESS_SEED; the randomized cancellation points below shift
// with it so each sweep explores different interrupt positions.

#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "common/random.h"
#include "exec/admission.h"
#include "exec/governor.h"
#include "join/hhnl.h"
#include "join/hvnl.h"
#include "join/vvm.h"
#include "parallel/parallel_join.h"
#include "planner/planner.h"
#include "relational/database.h"
#include "serve/scheduler.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "test_util.h"

namespace textjoin {
namespace {

using testing_util::MakeFixture;
using testing_util::RandomCollection;

uint64_t SeedOffset() {
  const char* s = std::getenv("TEXTJOIN_STRESS_SEED");
  return s != nullptr ? std::strtoull(s, nullptr, 10) : 0;
}

Result<JoinResult> RunAlgorithm(Algorithm algorithm, const JoinContext& ctx,
                                const JoinSpec& spec) {
  switch (algorithm) {
    case Algorithm::kHhnl: {
      HhnlJoin join;
      return join.Run(ctx, spec);
    }
    case Algorithm::kHvnl: {
      HvnlJoin join;
      return join.Run(ctx, spec);
    }
    case Algorithm::kVvm: {
      VvmJoin join;
      return join.Run(ctx, spec);
    }
  }
  return Status::Internal("unknown algorithm");
}

// ---------------------------------------------------------------------------
// QueryGovernor unit behaviour.

TEST(GovernorTest, DefaultGovernorNeverFires) {
  QueryGovernor g;
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(g.Checkpoint("loop").ok());
    EXPECT_TRUE(g.PollIo().ok());
  }
  EXPECT_EQ(g.checkpoints(), 100);
  EXPECT_EQ(g.io_polls(), 100);
  EXPECT_FALSE(g.cancelled());
  EXPECT_LT(g.time_to_cancel_ms(), 0);
}

TEST(GovernorTest, CancelStopsBothCheckpointAndIoPaths) {
  QueryGovernor g;
  ASSERT_TRUE(g.Checkpoint("before").ok());
  g.Cancel();
  Status at_checkpoint = g.Checkpoint("after");
  EXPECT_EQ(at_checkpoint.code(), StatusCode::kCancelled);
  EXPECT_TRUE(IsCancellation(at_checkpoint));
  EXPECT_EQ(g.PollIo().code(), StatusCode::kCancelled);
  EXPECT_GE(g.time_to_cancel_ms(), 0);
}

TEST(GovernorTest, CancelAtNthCheckpointIsDeterministic) {
  QueryGovernor g;
  g.CancelAtCheckpoint(3);
  EXPECT_TRUE(g.Checkpoint("a").ok());
  // I/O polls must not advance the checkpoint ordinal.
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(g.PollIo().ok());
  EXPECT_TRUE(g.Checkpoint("b").ok());
  Status third = g.Checkpoint("c");
  EXPECT_EQ(third.code(), StatusCode::kCancelled);
  EXPECT_NE(third.message().find("c"), std::string::npos) << third;
}

TEST(GovernorTest, SimulatedTimeCountsAgainstDeadline) {
  QueryGovernor g(GovernorLimits{/*deadline_ms=*/1000.0, 0});
  EXPECT_TRUE(g.Checkpoint("early").ok());
  g.ChargeSimulatedMs(2000.0);
  Status late = g.Checkpoint("late");
  EXPECT_EQ(late.code(), StatusCode::kDeadlineExceeded);
  // The deadline latches the shared cancel flag: every later observer
  // (e.g. a sibling worker) stops too.
  EXPECT_TRUE(g.cancelled());
}

TEST(GovernorTest, WorkerSharesCancellationAndRemainingDeadline) {
  QueryGovernor parent(GovernorLimits{/*deadline_ms=*/1000.0, 32});
  QueryGovernor worker = parent.SpawnWorker();
  EXPECT_GT(worker.limits().deadline_ms, 0);
  EXPECT_LE(worker.limits().deadline_ms, 1000.0);
  EXPECT_EQ(worker.limits().memory_budget_pages, 32);
  parent.Cancel();
  EXPECT_EQ(worker.Checkpoint("worker step").code(), StatusCode::kCancelled);
  // And the other direction: a worker failure cancels the parent.
  QueryGovernor parent2;
  QueryGovernor worker2 = parent2.SpawnWorker();
  worker2.Cancel();
  EXPECT_TRUE(parent2.cancelled());
}

TEST(GovernorTest, CapBufferPagesRecordsDegradation) {
  QueryGovernor unlimited;
  EXPECT_EQ(unlimited.CapBufferPages(500), 500);
  EXPECT_FALSE(unlimited.degraded());

  QueryGovernor capped(GovernorLimits{0, /*memory_budget_pages=*/100});
  EXPECT_EQ(capped.CapBufferPages(50), 50);  // budget does not bite
  EXPECT_FALSE(capped.degraded());
  EXPECT_EQ(capped.CapBufferPages(500), 100);
  EXPECT_TRUE(capped.degraded());
}

// ---------------------------------------------------------------------------
// (a) Cancellation sweep: every algorithm, randomized interrupt points.

class CancellationSweepTest : public ::testing::TestWithParam<Algorithm> {};

TEST_P(CancellationSweepTest, CleanErrorAtRandomizedCheckpoints) {
  const Algorithm algorithm = GetParam();
  SimulatedDisk disk(256);
  auto f = MakeFixture(&disk, RandomCollection(&disk, "c1", 40, 6, 50, 31),
                       RandomCollection(&disk, "c2", 25, 5, 50, 32));
  JoinSpec spec;
  spec.lambda = 3;
  JoinContext ctx = f->Context(60);

  // Ground truth, ungoverned.
  auto clean = RunAlgorithm(algorithm, ctx, spec);
  ASSERT_TRUE(clean.ok()) << clean.status();

  // A governed run with no limits must not change the result, and tells
  // us how many checkpoints this algorithm passes on this input.
  QueryGovernor count_governor;
  {
    ScopedDiskGovernor scoped(&disk, &count_governor);
    ctx.governor = &count_governor;
    auto governed = RunAlgorithm(algorithm, ctx, spec);
    ASSERT_TRUE(governed.ok()) << governed.status();
    EXPECT_EQ(*governed, *clean)
        << AlgorithmName(algorithm) << ": a no-limit governor changed the result";
  }
  const int64_t total = count_governor.checkpoints();
  ASSERT_GE(total, 1) << AlgorithmName(algorithm)
                      << " passed no cancellation checkpoints";
  EXPECT_GT(count_governor.io_polls(), 0)
      << AlgorithmName(algorithm) << " never polled on the I/O path";

  // Cancel at the first, the last, and three randomized checkpoints.
  Rng rng(77 + static_cast<uint64_t>(algorithm) + SeedOffset());
  std::vector<int64_t> cancel_points = {1, total};
  for (int i = 0; i < 3; ++i) {
    cancel_points.push_back(
        1 + static_cast<int64_t>(rng.NextBounded(static_cast<uint64_t>(total))));
  }
  for (int64_t n : cancel_points) {
    QueryGovernor governor;
    governor.CancelAtCheckpoint(n);
    ScopedDiskGovernor scoped(&disk, &governor);
    ctx.governor = &governor;
    auto result = RunAlgorithm(algorithm, ctx, spec);
    // Never a partial result presented as complete: the run is an error.
    ASSERT_FALSE(result.ok())
        << AlgorithmName(algorithm) << " ignored cancellation at checkpoint "
        << n << "/" << total;
    EXPECT_TRUE(IsCancellation(result.status())) << result.status();
    EXPECT_FALSE(IsIoFailure(result.status()))
        << "cancellation must not look like an I/O failure (the planner "
        << "would re-plan it): " << result.status();
    EXPECT_EQ(governor.checkpoints(), n)
        << AlgorithmName(algorithm) << " kept running past its cancellation";
    EXPECT_GE(governor.time_to_cancel_ms(), 0);

    // Leak invariant: a cancelled query leaves no pinned buffer frames.
    // While the cancelled governor is installed, the pool refuses new
    // pins without pinning; once it is gone, the pool works again.
    BufferPool pool(&disk, 4);
    auto file = disk.FindFile("c1");
    ASSERT_TRUE(file.ok());
    auto pinned = pool.Pin(*file, 0);
    ASSERT_FALSE(pinned.ok());
    EXPECT_TRUE(IsCancellation(pinned.status())) << pinned.status();
    EXPECT_EQ(pool.pinned_frames(), 0);
    ctx.governor = nullptr;
  }

  // After every cancelled run the disk is untouched: the same join still
  // produces the clean result.
  auto again = RunAlgorithm(algorithm, ctx, spec);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(*again, *clean);
}

TEST_P(CancellationSweepTest, TinyDeadlineFailsWithDeadlineExceeded) {
  const Algorithm algorithm = GetParam();
  SimulatedDisk disk(256);
  auto f = MakeFixture(&disk, RandomCollection(&disk, "c1", 30, 6, 50, 41),
                       RandomCollection(&disk, "c2", 20, 5, 50, 42));
  JoinSpec spec;
  spec.lambda = 3;
  JoinContext ctx = f->Context(60);

  QueryGovernor governor(GovernorLimits{/*deadline_ms=*/1e-9, 0});
  ScopedDiskGovernor scoped(&disk, &governor);
  ctx.governor = &governor;
  auto result = RunAlgorithm(algorithm, ctx, spec);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded)
      << result.status();
}

INSTANTIATE_TEST_SUITE_P(Sweep, CancellationSweepTest,
                         ::testing::Values(Algorithm::kHhnl, Algorithm::kHvnl,
                                           Algorithm::kVvm),
                         [](const auto& info) {
                           return std::string(AlgorithmName(info.param));
                         });

// Parallel joins: the parent governor reaches every worker.
TEST(ParallelGovernanceTest, CancellationReachesWorkers) {
  SimulatedDisk disk(256);
  auto f = MakeFixture(&disk, RandomCollection(&disk, "c1", 30, 6, 50, 51),
                       RandomCollection(&disk, "c2", 24, 5, 50, 52));
  JoinSpec spec;
  spec.lambda = 3;
  JoinContext ctx = f->Context(60);

  ParallelTextJoin parallel({Algorithm::kHhnl, /*workers=*/3});
  auto clean = parallel.Run(ctx, spec);
  ASSERT_TRUE(clean.ok()) << clean.status();

  // A no-limit governor is transparent.
  {
    QueryGovernor governor;
    ScopedDiskGovernor scoped(&disk, &governor);
    ctx.governor = &governor;
    auto governed = parallel.Run(ctx, spec);
    ASSERT_TRUE(governed.ok()) << governed.status();
    EXPECT_EQ(governed->result, clean->result);
  }

  // Parent checkpoints: "parallel setup", then one per worker. Cancelling
  // at each position stops the whole query with a clean error.
  for (int64_t n = 1; n <= 4; ++n) {
    QueryGovernor governor;
    governor.CancelAtCheckpoint(n);
    ScopedDiskGovernor scoped(&disk, &governor);
    ctx.governor = &governor;
    auto result = parallel.Run(ctx, spec);
    ASSERT_FALSE(result.ok()) << "parallel join ignored cancellation at " << n;
    EXPECT_TRUE(IsCancellation(result.status())) << result.status();
  }
  ctx.governor = nullptr;
}

TEST(ParallelGovernanceTest, DeadlineCancelsParallelJoin) {
  SimulatedDisk disk(256);
  auto f = MakeFixture(&disk, RandomCollection(&disk, "c1", 30, 6, 50, 61),
                       RandomCollection(&disk, "c2", 24, 5, 50, 62));
  JoinSpec spec;
  spec.lambda = 3;
  JoinContext ctx = f->Context(60);

  // The deadline expires inside a worker (the setup checkpoints pass
  // before any simulated time is charged... so charge it up front).
  QueryGovernor governor(GovernorLimits{/*deadline_ms=*/5.0, 0});
  governor.ChargeSimulatedMs(10.0);
  ScopedDiskGovernor scoped(&disk, &governor);
  ctx.governor = &governor;
  ParallelTextJoin parallel({Algorithm::kHhnl, /*workers=*/3});
  auto result = parallel.Run(ctx, spec);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded)
      << result.status();
  ctx.governor = nullptr;
}

// ---------------------------------------------------------------------------
// (b) Memory-budget degradation: bit-identical results at half the buffer.

class DegradationTest : public ::testing::TestWithParam<Algorithm> {};

TEST_P(DegradationTest, HalfBudgetIsBitIdentical) {
  const Algorithm algorithm = GetParam();
  SimulatedDisk disk(256);
  auto f = MakeFixture(&disk, RandomCollection(&disk, "c1", 40, 6, 50, 71),
                       RandomCollection(&disk, "c2", 25, 5, 50, 72));
  JoinSpec spec;
  spec.lambda = 3;
  const int64_t B = 60;
  JoinContext ctx = f->Context(B);

  auto unconstrained = RunAlgorithm(algorithm, ctx, spec);
  ASSERT_TRUE(unconstrained.ok()) << unconstrained.status();

  QueryGovernor governor(GovernorLimits{0, /*memory_budget_pages=*/B / 2});
  ScopedDiskGovernor scoped(&disk, &governor);
  ctx.governor = &governor;

  if (algorithm == Algorithm::kVvm) {
    // A budget tight enough to shrink the matrix partition forces more,
    // smaller passes — and still the identical result. (The half-B budget
    // below leaves the matrix whole on this input, so the pass-count
    // assertion needs its own, tighter governor.)
    JoinContext full = ctx;
    full.governor = nullptr;
    QueryGovernor tiny(GovernorLimits{0, /*memory_budget_pages=*/3});
    JoinContext tiny_ctx = ctx;
    tiny_ctx.governor = &tiny;
    EXPECT_GT(VvmJoin::Passes(tiny_ctx, spec), VvmJoin::Passes(full, spec));
    ScopedDiskGovernor tiny_scoped(&disk, &tiny);
    auto multi_pass = RunAlgorithm(algorithm, tiny_ctx, spec);
    ASSERT_TRUE(multi_pass.ok()) << multi_pass.status();
    EXPECT_EQ(*multi_pass, *unconstrained)
        << "multi-pass VVM changed the join result";
    EXPECT_TRUE(tiny.degraded());
  }
  if (algorithm == Algorithm::kHhnl) {
    JoinContext full = ctx;
    full.governor = nullptr;
    EXPECT_LT(HhnlJoin::BatchSize(ctx, spec), HhnlJoin::BatchSize(full, spec));
  }

  auto constrained = RunAlgorithm(algorithm, ctx, spec);
  ASSERT_TRUE(constrained.ok()) << constrained.status();
  EXPECT_EQ(*constrained, *unconstrained)
      << AlgorithmName(algorithm)
      << ": degradation changed the join result";
  EXPECT_TRUE(governor.degraded())
      << AlgorithmName(algorithm) << " never consulted the memory budget";
  ctx.governor = nullptr;
}

INSTANTIATE_TEST_SUITE_P(Sweep, DegradationTest,
                         ::testing::Values(Algorithm::kHhnl, Algorithm::kHvnl,
                                           Algorithm::kVvm),
                         [](const auto& info) {
                           return std::string(AlgorithmName(info.param));
                         });

// ---------------------------------------------------------------------------
// (c) Admission control: N slots, 4N submissions.

TEST(AdmissionTest, AdmitsQueuesAndSheds) {
  AdmissionOptions options;
  options.max_concurrent = 2;
  options.max_queue = 4;
  AdmissionController controller(options);

  const int64_t N = options.max_concurrent;
  std::vector<AdmissionGrant> admitted;
  std::vector<AdmissionGrant> queued;
  int64_t shed = 0;
  for (int64_t i = 0; i < 4 * N; ++i) {
    auto grant = controller.Submit(/*predicted_cost_pages=*/100,
                                   /*memory_claim_pages=*/10);
    if (!grant.ok()) {
      EXPECT_EQ(grant.status().code(), StatusCode::kResourceExhausted)
          << grant.status();
      EXPECT_TRUE(IsRetriableAdmission(grant.status()));
      EXPECT_FALSE(IsCancellation(grant.status()));
      ++shed;
      continue;
    }
    if (grant->outcome == AdmissionOutcome::kAdmitted) {
      admitted.push_back(*grant);
    } else {
      EXPECT_EQ(grant->outcome, AdmissionOutcome::kQueued);
      queued.push_back(*grant);
    }
  }
  EXPECT_EQ(static_cast<int64_t>(admitted.size()), N);
  EXPECT_EQ(static_cast<int64_t>(queued.size()), options.max_queue);
  EXPECT_EQ(shed, 4 * N - N - options.max_queue);
  EXPECT_EQ(controller.running(), N);
  EXPECT_EQ(controller.queued(), options.max_queue);
  EXPECT_EQ(controller.total_admitted(), N);
  EXPECT_EQ(controller.total_queued(), options.max_queue);
  EXPECT_EQ(controller.total_shed(), shed);

  // Finishing a running query promotes the head of the FIFO, whose Await
  // then reports the simulated queue wait.
  controller.Release(admitted[0].ticket, /*elapsed_ms=*/25.0);
  auto resolved = controller.Await(queued[0].ticket);
  ASSERT_TRUE(resolved.ok()) << resolved.status();
  EXPECT_EQ(resolved->outcome, AdmissionOutcome::kQueued);
  EXPECT_DOUBLE_EQ(resolved->queue_wait_ms, 25.0);
  EXPECT_EQ(controller.running(), N);

  // A ticket that never got a slot resolves to a shed, not a hang.
  controller.Release(resolved->ticket);
  controller.Release(admitted[1].ticket);
  auto second = controller.Await(queued[1].ticket);
  ASSERT_TRUE(second.ok());
  auto starved = controller.Await(queued[3].ticket);
  EXPECT_FALSE(starved.ok());
  EXPECT_TRUE(IsRetriableAdmission(starved.status())) << starved.status();
}

TEST(AdmissionTest, QueueTimeoutShedsWaiters) {
  AdmissionOptions options;
  options.max_concurrent = 1;
  options.max_queue = 2;
  options.queue_timeout_ms = 10.0;
  AdmissionController controller(options);

  auto first = controller.Submit(0, 0);
  ASSERT_TRUE(first.ok());
  auto waiting = controller.Submit(0, 0);
  ASSERT_TRUE(waiting.ok());
  EXPECT_EQ(waiting->outcome, AdmissionOutcome::kQueued);

  // The running query takes longer than the waiter is allowed to wait.
  controller.Release(first->ticket, /*elapsed_ms=*/50.0);
  auto resolved = controller.Await(waiting->ticket);
  ASSERT_FALSE(resolved.ok());
  EXPECT_EQ(resolved.status().code(), StatusCode::kResourceExhausted)
      << resolved.status();
  EXPECT_EQ(controller.running(), 0);
  EXPECT_EQ(controller.total_shed(), 1);
}

TEST(AdmissionTest, QueueTimeoutChargesWaitAndCountsTimeoutShed) {
  AdmissionOptions options;
  options.max_concurrent = 1;
  options.max_queue = 2;
  options.queue_timeout_ms = 10.0;
  AdmissionController controller(options);

  auto running = controller.Submit(0, 0);
  ASSERT_TRUE(running.ok());
  auto waiter = controller.Submit(0, 0);
  ASSERT_TRUE(waiter.ok());
  EXPECT_EQ(waiter->outcome, AdmissionOutcome::kQueued);

  // Time passes with no Release: the timeout must fire from the clock
  // alone, and the 25 ms the waiter actually sat in the queue must be
  // charged to the wait accounting, not silently dropped with the query.
  controller.AdvanceTimeMs(25.0);
  EXPECT_EQ(controller.StateOf(waiter->ticket), TicketState::kTimedOut);
  EXPECT_EQ(controller.queued(), 0);
  EXPECT_EQ(controller.total_timeout_shed(), 1);
  EXPECT_EQ(controller.total_shed(), 1);
  EXPECT_DOUBLE_EQ(controller.total_queue_wait_ms(), 25.0);
  EXPECT_DOUBLE_EQ(controller.shed_wait_ms(waiter->ticket), 25.0);

  // Await reports the shed; the per-ticket wait record survives it so a
  // scheduler can fill its post-mortem report.
  auto resolved = controller.Await(waiter->ticket);
  ASSERT_FALSE(resolved.ok());
  EXPECT_EQ(resolved.status().code(), StatusCode::kResourceExhausted);
  EXPECT_DOUBLE_EQ(controller.shed_wait_ms(waiter->ticket), 25.0);

  // A ticket never shed from the queue has no shed-wait record.
  EXPECT_LT(controller.shed_wait_ms(running->ticket), 0);
}

TEST(AdmissionTest, AdvanceTimeOnEmptyQueueIsHarmless) {
  AdmissionOptions options;
  options.max_concurrent = 1;
  options.queue_timeout_ms = 5.0;
  AdmissionController controller(options);

  controller.AdvanceTimeMs(100.0);
  EXPECT_DOUBLE_EQ(controller.now_ms(), 100.0);
  EXPECT_EQ(controller.total_shed(), 0);
  EXPECT_EQ(controller.total_timeout_shed(), 0);
  EXPECT_DOUBLE_EQ(controller.total_queue_wait_ms(), 0.0);
  // The controller still admits after an idle stretch.
  auto grant = controller.Submit(0, 0);
  ASSERT_TRUE(grant.ok());
  EXPECT_EQ(grant->outcome, AdmissionOutcome::kAdmitted);
}

TEST(AdmissionTest, ExactBoundaryWaitPromotesInsteadOfShedding) {
  AdmissionOptions options;
  options.max_concurrent = 1;
  options.max_queue = 2;
  options.queue_timeout_ms = 10.0;

  // wait == timeout: still within the allowed wait, so the waiter is
  // promoted and charged exactly the boundary wait.
  {
    AdmissionController controller(options);
    auto running = controller.Submit(0, 0);
    ASSERT_TRUE(running.ok());
    auto waiter = controller.Submit(0, 0);
    ASSERT_TRUE(waiter.ok());
    controller.Release(running->ticket, /*elapsed_ms=*/10.0);
    EXPECT_EQ(controller.StateOf(waiter->ticket), TicketState::kPromoted);
    auto promoted = controller.Await(waiter->ticket);
    ASSERT_TRUE(promoted.ok()) << promoted.status();
    EXPECT_DOUBLE_EQ(promoted->queue_wait_ms, 10.0);
    EXPECT_EQ(controller.total_timeout_shed(), 0);
    EXPECT_DOUBLE_EQ(controller.total_queue_wait_ms(), 10.0);
  }

  // Any strictly larger wait sheds.
  {
    AdmissionController controller(options);
    auto running = controller.Submit(0, 0);
    ASSERT_TRUE(running.ok());
    auto waiter = controller.Submit(0, 0);
    ASSERT_TRUE(waiter.ok());
    controller.Release(running->ticket, /*elapsed_ms=*/10.0 + 1e-9);
    EXPECT_EQ(controller.StateOf(waiter->ticket), TicketState::kTimedOut);
    EXPECT_EQ(controller.total_timeout_shed(), 1);
    EXPECT_FALSE(controller.Await(waiter->ticket).ok());
  }
}

TEST(AdmissionTest, PredictedRuntimeOverDeadlineIsShedUpFront) {
  AdmissionOptions options;
  options.max_concurrent = 4;
  options.cost_unit_ms = 1.0;  // 1 ms per predicted page
  AdmissionController controller(options);

  auto fits = controller.Submit(/*predicted_cost_pages=*/100, 0,
                                /*deadline_ms=*/500.0);
  ASSERT_TRUE(fits.ok()) << fits.status();
  EXPECT_DOUBLE_EQ(fits->predicted_runtime_ms, 100.0);

  auto doomed = controller.Submit(/*predicted_cost_pages=*/1000, 0,
                                  /*deadline_ms=*/500.0);
  ASSERT_FALSE(doomed.ok());
  EXPECT_EQ(doomed.status().code(), StatusCode::kDeadlineExceeded)
      << doomed.status();
  EXPECT_TRUE(IsCancellation(doomed.status()));
  EXPECT_EQ(controller.total_shed(), 1);
}

TEST(AdmissionTest, MemoryPressureGrantsPartialClaims) {
  AdmissionOptions options;
  options.max_concurrent = 4;
  options.memory_budget_pages = 100;
  AdmissionController controller(options);

  auto big = controller.Submit(0, /*memory_claim_pages=*/80);
  ASSERT_TRUE(big.ok());
  EXPECT_EQ(big->memory_granted_pages, 80);

  // Only 20 pages remain: the next query is granted the remainder and
  // must degrade instead of being rejected.
  auto squeezed = controller.Submit(0, /*memory_claim_pages=*/50);
  ASSERT_TRUE(squeezed.ok());
  EXPECT_EQ(squeezed->memory_granted_pages, 20);
  EXPECT_EQ(controller.memory_in_use_pages(), 100);

  controller.Release(big->ticket);
  EXPECT_EQ(controller.memory_in_use_pages(), 20);
}

TEST(AdmissionTest, FifoFairnessNoOvertaking) {
  AdmissionOptions options;
  options.max_concurrent = 1;
  options.max_queue = 2;
  AdmissionController controller(options);

  auto running = controller.Submit(0, 0);
  ASSERT_TRUE(running.ok());
  auto waiter = controller.Submit(0, 0);
  ASSERT_TRUE(waiter.ok());
  EXPECT_EQ(waiter->outcome, AdmissionOutcome::kQueued);

  // Even after the slot frees, a newcomer must not jump the queue.
  controller.Release(running->ticket, 5.0);
  auto newcomer = controller.Submit(0, 0);
  ASSERT_TRUE(newcomer.ok());
  EXPECT_EQ(newcomer->outcome, AdmissionOutcome::kQueued);
  auto promoted = controller.Await(waiter->ticket);
  ASSERT_TRUE(promoted.ok()) << promoted.status();
}

// ---------------------------------------------------------------------------
// Database integration: admission + governor + EXPLAIN ANALYZE + SET knobs.

const std::vector<std::string> kResumes = {
    "database indexing and query processing experience",
    "realtime embedded control firmware for avionics",
    "social media brand campaigns and market research",
    "distributed storage replication and consensus",
};
const std::vector<std::string> kJobs = {
    "database engineer for query processing",
    "embedded firmware engineer realtime control",
};

void FillDatabase(Database* db) {
  ASSERT_TRUE(db->AddCollectionFromText("resumes", kResumes).ok());
  ASSERT_TRUE(db->AddCollectionFromText("jobs", kJobs).ok());
  ASSERT_TRUE(db->BuildIndex("resumes").ok());
  ASSERT_TRUE(db->BuildIndex("jobs").ok());
}

TEST(DatabaseGovernanceTest, ExplainAnalyzeReportsGovernance) {
  DatabaseOptions options;
  options.admission.max_concurrent = 2;
  Database db(options);
  FillDatabase(&db);

  JoinSpec spec;
  spec.lambda = 1;
  auto analyzed = db.JoinAnalyze("resumes", "jobs", spec);
  ASSERT_TRUE(analyzed.ok()) << analyzed.status();
  EXPECT_NE(analyzed->report.find("governance: admitted"), std::string::npos)
      << analyzed->report;
  EXPECT_NE(analyzed->report.find("queue wait"), std::string::npos);
  EXPECT_NE(analyzed->report.find("checkpoints="), std::string::npos);
  EXPECT_EQ(db.admission()->running(), 0) << "query never released its slot";
  EXPECT_EQ(db.admission()->total_admitted(), 1);
}

TEST(DatabaseGovernanceTest, UngovernedReportHasNoGovernanceBlock) {
  Database db;
  FillDatabase(&db);
  JoinSpec spec;
  spec.lambda = 1;
  auto analyzed = db.JoinAnalyze("resumes", "jobs", spec);
  ASSERT_TRUE(analyzed.ok()) << analyzed.status();
  EXPECT_EQ(analyzed->report.find("governance:"), std::string::npos)
      << analyzed->report;
}

TEST(DatabaseGovernanceTest, SpecDeadlineCancelsJoin) {
  Database db;
  FillDatabase(&db);
  JoinSpec spec;
  spec.lambda = 1;
  spec.deadline_ms = 1e-9;
  auto result = db.Join("resumes", "jobs", spec);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded)
      << result.status();
  // Admission bookkeeping (off here) and the disk survive: the same join
  // without the deadline succeeds.
  spec.deadline_ms = 0;
  auto retry = db.Join("resumes", "jobs", spec);
  EXPECT_TRUE(retry.ok()) << retry.status();
}

TEST(DatabaseGovernanceTest, SpecMemoryBudgetDegradesNotFails) {
  Database db;
  FillDatabase(&db);
  JoinSpec spec;
  spec.lambda = 1;
  auto full = db.Join("resumes", "jobs", spec);
  ASSERT_TRUE(full.ok()) << full.status();
  spec.memory_budget_pages = 8;
  auto constrained = db.Join("resumes", "jobs", spec);
  ASSERT_TRUE(constrained.ok()) << constrained.status();
  EXPECT_EQ(*constrained, *full);
}

TEST(DatabaseGovernanceTest, SetKnobsApplyToSqlQueries) {
  Database db;
  FillDatabase(&db);

  Table applicants("Applicants",
                   std::vector<Column>{{"Name", ColumnType::kString},
                                       {"Resume", ColumnType::kText}});
  TEXTJOIN_CHECK_OK(
      applicants.AttachCollection("Resume", db.collection("resumes")));
  TEXTJOIN_CHECK_OK(applicants.AddRow({std::string("Ann"), TextRef{0}}));
  TEXTJOIN_CHECK_OK(applicants.AddRow({std::string("Bob"), TextRef{1}}));
  TEXTJOIN_CHECK_OK(applicants.AddRow({std::string("Cam"), TextRef{2}}));
  TEXTJOIN_CHECK_OK(applicants.AddRow({std::string("Dee"), TextRef{3}}));
  Table positions("Positions",
                  std::vector<Column>{{"Title", ColumnType::kString},
                                      {"Job_descr", ColumnType::kText}});
  TEXTJOIN_CHECK_OK(
      positions.AttachCollection("Job_descr", db.collection("jobs")));
  TEXTJOIN_CHECK_OK(
      positions.AddRow({std::string("DB Engineer"), TextRef{0}}));
  TEXTJOIN_CHECK_OK(
      positions.AddRow({std::string("Firmware Engineer"), TextRef{1}}));
  ASSERT_TRUE(db.RegisterTable(&applicants).ok());
  ASSERT_TRUE(db.RegisterTable(&positions).ok());

  const std::string join_sql =
      "SELECT P.Title, A.Name FROM Positions P, Applicants A "
      "WHERE A.Resume SIMILAR_TO(1) P.Job_descr";

  // SET parses, echoes, and sticks.
  auto set_out = db.ExecuteSql("SET deadline_ms = 0.000001;");
  ASSERT_TRUE(set_out.ok()) << set_out.status();
  ASSERT_EQ(set_out->rows.size(), 1u);
  EXPECT_EQ(set_out->rows[0], "SET deadline_ms = 0.000001");
  EXPECT_GT(db.session_deadline_ms(), 0);

  // The session deadline now cancels the SQL join...
  auto doomed = db.ExecuteSql(join_sql);
  ASSERT_FALSE(doomed.ok());
  EXPECT_TRUE(IsCancellation(doomed.status())) << doomed.status();

  // ...until cleared.
  ASSERT_TRUE(db.ExecuteSql("SET deadline_ms = 0").ok());
  EXPECT_EQ(db.session_deadline_ms(), 0);
  auto fine = db.ExecuteSql(join_sql);
  ASSERT_TRUE(fine.ok()) << fine.status();
  EXPECT_EQ(fine->rows.size(), 2u);

  // A memory budget degrades without changing results.
  ASSERT_TRUE(db.ExecuteSql("set memory_budget_pages = 8").ok());
  auto squeezed = db.ExecuteSql(join_sql);
  ASSERT_TRUE(squeezed.ok()) << squeezed.status();
  EXPECT_EQ(squeezed->rows, fine->rows);

  // Bad knob / bad value are one-line errors, not crashes.
  auto unknown = db.ExecuteSql("SET warp_speed = 9");
  ASSERT_FALSE(unknown.ok());
  EXPECT_NE(unknown.status().message().find("deadline_ms"),
            std::string::npos)
      << "the error should list supported knobs: " << unknown.status();
  EXPECT_FALSE(db.ExecuteSql("SET deadline_ms = banana").ok());
  EXPECT_FALSE(db.ExecuteSql("SET deadline_ms = -5").ok());
}

// ---------------------------------------------------------------------------
// Serving-layer governance: cancellation of one tenant's query must not
// poison the shared result cache or leak pinned buffer frames, and must
// leave the other tenant's concurrent query bit-identical.

TEST(ServingGovernanceTest, CancelledTenantLeavesNoPoisonNoLeaksNoDamage) {
  SimulatedDisk disk(256);
  DocumentCollection col =
      RandomCollection(&disk, "docs", 80, 5, 40, 91 + SeedOffset());
  auto index = InvertedFile::Build(&disk, "docs.inv", col);
  ASSERT_TRUE(index.ok()) << index.status();

  const std::vector<DCell> query_a = {{0, 2}, {1, 1}, {4, 1}};
  const std::vector<DCell> query_b = {{2, 1}, {3, 2}};

  // Ground truth: each query served alone, no cache, no sharing.
  auto isolated = [&](const std::vector<DCell>& cells) {
    ServeOptions options;
    options.result_cache_entries = 0;
    options.shared_scans = false;
    QueryScheduler alone(&disk, nullptr, options);
    TEXTJOIN_CHECK_OK(alone.AddCollection("docs", &col, &*index));
    ServeQuery q;
    q.collection = "docs";
    q.cells = cells;
    q.lambda = 4;
    TEXTJOIN_CHECK_OK(alone.Submit(q).status());
    auto records = alone.Run();
    TEXTJOIN_CHECK_OK(records.status());
    TEXTJOIN_CHECK(records.value().front().outcome == "completed");
    return records.value().front().matches;
  };
  const std::vector<Match> ref_a = isolated(query_a);
  const std::vector<Match> ref_b = isolated(query_b);

  ServeOptions options;
  options.result_cache_entries = 8;
  options.shared_scans = true;
  options.buffer_pool_pages = 24;
  options.tenants = {{"a", 8}, {"b", 8}};
  QueryScheduler scheduler(&disk, nullptr, options);
  ASSERT_TRUE(scheduler.AddCollection("docs", &col, &*index).ok());

  // Tenant a's query dies at its second checkpoint while tenant b's runs
  // interleaved with it.
  ServeQuery qa;
  qa.tenant = "a";
  qa.collection = "docs";
  qa.cells = query_a;
  qa.lambda = 4;
  qa.cancel_at_checkpoint = 2;
  ServeQuery qb;
  qb.tenant = "b";
  qb.collection = "docs";
  qb.cells = query_b;
  qb.lambda = 4;
  ASSERT_TRUE(scheduler.Submit(qa).ok());
  ASSERT_TRUE(scheduler.Submit(qb).ok());
  auto records = scheduler.Run();
  ASSERT_TRUE(records.ok()) << records.status();
  ASSERT_EQ(records->size(), 2u);

  const QueryRecord& ra = (*records)[0];
  const QueryRecord& rb = (*records)[1];
  EXPECT_EQ(ra.outcome, "cancelled") << ra.error;
  EXPECT_TRUE(ra.matches.empty())
      << "a cancelled query must not present partial matches";
  ASSERT_EQ(rb.outcome, "completed") << rb.error;
  EXPECT_EQ(rb.matches, ref_b)
      << "the surviving tenant's result changed under a neighbor's "
      << "cancellation";

  // No leaked pins, no admission slot held.
  EXPECT_EQ(scheduler.pool()->pinned_frames(), 0);
  EXPECT_EQ(scheduler.admission()->running(), 0);

  // No cache poison: the cancelled query inserted nothing, so re-running
  // it is a cold MISS that produces the correct full result...
  ServeQuery retry = qa;
  retry.cancel_at_checkpoint = 0;
  ASSERT_TRUE(scheduler.Submit(retry).ok());
  auto rerun = scheduler.Run();
  ASSERT_TRUE(rerun.ok()) << rerun.status();
  ASSERT_EQ(rerun->front().outcome, "completed") << rerun->front().error;
  EXPECT_FALSE(rerun->front().cache_hit)
      << "a cancelled query must never seed the cache";
  EXPECT_EQ(rerun->front().matches, ref_a);

  // ...and only the COMPLETED run is cached for the next repeat.
  ASSERT_TRUE(scheduler.Submit(retry).ok());
  auto warm = scheduler.Run();
  ASSERT_TRUE(warm.ok());
  ASSERT_EQ(warm->front().outcome, "completed");
  EXPECT_TRUE(warm->front().cache_hit);
  EXPECT_EQ(warm->front().matches, ref_a);
}

TEST(DatabaseGovernanceTest, AdmissionDefaultDeadlineGovernsJoins) {
  DatabaseOptions options;
  options.admission.default_deadline_ms = 1e-9;
  Database db(options);
  FillDatabase(&db);
  JoinSpec spec;
  spec.lambda = 1;
  auto result = db.Join("resumes", "jobs", spec);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded)
      << result.status();
  // A per-query deadline overrides the database default.
  spec.deadline_ms = 60000;
  auto generous = db.Join("resumes", "jobs", spec);
  EXPECT_TRUE(generous.ok()) << generous.status();
}

}  // namespace
}  // namespace textjoin
