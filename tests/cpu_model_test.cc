#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "storage/disk_manager.h"
#include "cost/cpu_model.h"
#include "cost/statistics.h"
#include "obs/query_stats.h"
#include "join/hhnl.h"
#include "join/hvnl.h"
#include "join/vvm.h"
#include "test_util.h"

namespace textjoin {
namespace {

using testing_util::MakeFixture;
using testing_util::RandomCollection;

CostInputs InputsFor(const testing_util::JoinFixture& f, int64_t B,
                     const JoinSpec& spec) {
  CostInputs in;
  in.c1 = StatisticsOf(f.inner);
  in.c2 = StatisticsOf(f.outer);
  in.sys.buffer_pages = B;
  in.sys.page_size = f.disk->page_size();
  in.sys.alpha = 5.0;
  in.query.lambda = spec.lambda;
  in.query.delta = MeasuredDelta(f.inner, f.outer);
  in.q = MeasuredTermOverlap(f.outer, f.inner);
  return in;
}

TEST(CpuStatsTest, ArithmeticAndToString) {
  CpuStats a{10, 20, 5, 7};
  CpuStats b{1, 2, 3, 4};
  a += b;
  EXPECT_EQ(a.cell_compares, 11);
  EXPECT_EQ(a.accumulations, 22);
  EXPECT_EQ(a.heap_offers, 8);
  EXPECT_EQ(a.cells_decoded, 11);
  EXPECT_DOUBLE_EQ(a.Total(), 52.0);
  EXPECT_NE(a.ToString().find("accum=22"), std::string::npos);
}

// The key structural property: all three algorithms perform EXACTLY the
// same number of similarity accumulations — one per (pair, common term).
TEST(CpuCountingTest, AccumulationsIdenticalAcrossAlgorithms) {
  SimulatedDisk disk(256);
  auto f = MakeFixture(&disk, RandomCollection(&disk, "c1", 50, 6, 60, 71),
                       RandomCollection(&disk, "c2", 35, 5, 60, 72));
  JoinSpec spec;
  spec.lambda = 4;
  // The invariant holds for the exhaustive accumulation; pruning skips
  // provably-losing work per algorithm, which is tested in pruning_test.
  spec.pruning = PruningConfig::Disabled();

  int64_t expected = 0;  // sum over shared terms of df1 * df2
  for (const auto& [term, df2] : f->outer.doc_freq_map()) {
    expected += f->inner.DocumentFrequency(term) * df2;
  }

  for (int pass = 0; pass < 3; ++pass) {
    QueryStatsCollector collector(&disk);
    JoinContext ctx = f->Context(100);
    ctx.stats = &collector;
    Result<JoinResult> r(Status::OK());
    if (pass == 0) {
      HhnlJoin join;
      r = join.Run(ctx, spec);
    } else if (pass == 1) {
      HvnlJoin join;
      r = join.Run(ctx, spec);
    } else {
      VvmJoin join;
      r = join.Run(ctx, spec);
    }
    ASSERT_TRUE(r.ok());
    const CpuStats cpu = collector.Finish().root.cpu;
    EXPECT_EQ(cpu.accumulations, expected) << "pass " << pass;
  }
}

TEST(CpuCountingTest, HhnlComparesBoundedByCellSums) {
  SimulatedDisk disk(256);
  auto f = MakeFixture(&disk, RandomCollection(&disk, "c1", 30, 6, 50, 73),
                       RandomCollection(&disk, "c2", 20, 5, 50, 74));
  JoinSpec spec;
  spec.lambda = 3;
  spec.pruning = PruningConfig::Disabled();  // the bound needs full merges
  QueryStatsCollector collector(&disk);
  JoinContext ctx = f->Context(100);
  ctx.stats = &collector;
  HhnlJoin join;
  ASSERT_TRUE(join.Run(ctx, spec).ok());
  const CpuStats cpu = collector.Finish().root.cpu;
  // Each pair walks at most K1 + K2 cells and at least max(K1, K2).
  int64_t pairs = f->inner.num_documents() * f->outer.num_documents();
  EXPECT_LE(cpu.cell_compares, pairs * (6 + 5));
  EXPECT_GE(cpu.cell_compares, pairs * 6);
}

TEST(CpuCountingTest, VvmDecodesBothFilesPerPass) {
  SimulatedDisk disk(256);
  auto f = MakeFixture(&disk, RandomCollection(&disk, "c1", 50, 6, 60, 75),
                       RandomCollection(&disk, "c2", 35, 5, 60, 76));
  JoinSpec spec;
  spec.lambda = 3;
  spec.delta = 1.0;
  QueryStatsCollector collector(&disk);
  JoinContext ctx = f->Context(6);  // forces several passes
  ctx.stats = &collector;
  VvmJoin join;
  int64_t passes = VvmJoin::Passes(ctx, spec);
  ASSERT_GT(passes, 1);
  // Block-max traversal (pruning.block_skip) leaves posting blocks
  // undecoded once admission closes, so full decode only holds without it.
  spec.pruning.block_skip = false;
  ASSERT_TRUE(join.Run(ctx, spec).ok());
  const CpuStats cpu = collector.Finish().root.cpu;
  EXPECT_EQ(cpu.cells_decoded,
            passes * (f->inner.total_cells() + f->outer.total_cells()));

  // With block skipping, decode work can only go down — never up.
  QueryStatsCollector blocked(&disk);
  ctx.stats = &blocked;
  spec.pruning.block_skip = true;
  ASSERT_TRUE(join.Run(ctx, spec).ok());
  EXPECT_LE(blocked.Finish().root.cpu.cells_decoded, cpu.cells_decoded);
}

TEST(CpuCountingTest, NullCpuPointerCountsNothing) {
  SimulatedDisk disk(256);
  auto f = MakeFixture(&disk, RandomCollection(&disk, "c1", 20, 5, 40, 77),
                       RandomCollection(&disk, "c2", 15, 4, 40, 78));
  JoinSpec spec;
  HhnlJoin join;
  auto r = join.Run(f->Context(100), spec);  // ctx.stats == nullptr
  EXPECT_TRUE(r.ok());
}

// The analytic model tracks the measured counters within a modest band
// (its inputs are averages; the collections are genuinely random).
TEST(CpuModelTest, EstimatesTrackMeasurements) {
  SimulatedDisk disk(256);
  auto f = MakeFixture(&disk, RandomCollection(&disk, "c1", 80, 8, 120, 79),
                       RandomCollection(&disk, "c2", 60, 6, 120, 80));
  JoinSpec spec;
  spec.lambda = 5;
  spec.pruning = PruningConfig::Disabled();  // unpruned estimates below
  CostInputs in = InputsFor(*f, 100, spec);

  auto check = [](double measured, double estimated, double band,
                  const char* what) {
    ASSERT_GT(estimated, 0) << what;
    EXPECT_LT(measured / estimated, band) << what << " measured=" << measured
                                          << " estimated=" << estimated;
    EXPECT_GT(measured / estimated, 1.0 / band)
        << what << " measured=" << measured << " estimated=" << estimated;
  };

  {
    QueryStatsCollector collector(&disk);
    JoinContext ctx = f->Context(100);
    ctx.stats = &collector;
    HhnlJoin join;
    ASSERT_TRUE(join.Run(ctx, spec).ok());
    const CpuStats cpu = collector.Finish().root.cpu;
    CpuEstimate est = HhnlCpuCost(in);
    check(static_cast<double>(cpu.cell_compares), est.cell_compares, 1.5,
          "HHNL compares");
    check(static_cast<double>(cpu.accumulations), est.accumulations, 2.0,
          "HHNL accumulations");
  }
  {
    QueryStatsCollector collector(&disk);
    JoinContext ctx = f->Context(100);
    ctx.stats = &collector;
    HvnlJoin join;
    ASSERT_TRUE(join.Run(ctx, spec).ok());
    const CpuStats cpu = collector.Finish().root.cpu;
    CpuEstimate est = HvnlCpuCost(in);
    check(static_cast<double>(cpu.accumulations), est.accumulations, 2.0,
          "HVNL accumulations");
  }
  {
    QueryStatsCollector collector(&disk);
    JoinContext ctx = f->Context(100);
    ctx.stats = &collector;
    VvmJoin join;
    ASSERT_TRUE(join.Run(ctx, spec).ok());
    const CpuStats cpu = collector.Finish().root.cpu;
    CpuEstimate est = VvmCpuCost(in);
    check(static_cast<double>(cpu.cells_decoded), est.cells_decoded, 1.2,
          "VVM decoded");
  }
}

TEST(CpuModelTest, CombinedCostAddsWeightedCpu) {
  AlgorithmCost io;
  io.seq = 100;
  io.rand = 500;
  CpuEstimate cpu;
  cpu.accumulations = 1000;
  EXPECT_DOUBLE_EQ(CombinedCost(io, cpu, 100.0), 110.0);
  io.feasible = false;
  io.seq = std::numeric_limits<double>::infinity();
  EXPECT_TRUE(std::isinf(CombinedCost(io, cpu, 100.0)));
}

TEST(CpuModelTest, ExpectedPruningRateProperties) {
  CostInputs in;
  in.c1 = {1000, 50, 5000};
  in.c2 = {800, 40, 4000};
  in.query = {20, 0.1};
  const double rate = ExpectedPruningRate(in);
  EXPECT_GT(rate, 0.0);
  EXPECT_LE(rate, 0.9);
  // More kept matches -> less prunable work.
  in.query.lambda = 80;
  EXPECT_LT(ExpectedPruningRate(in), rate);
  // lambda >= all candidates -> nothing to prune.
  in.query.lambda = 1000;
  in.query.delta = 1.0;
  EXPECT_DOUBLE_EQ(ExpectedPruningRate(in), 0.0);
}

TEST(CpuModelTest, PruningDiscountsEstimatedWork) {
  CostInputs in;
  in.c1 = {1000, 50, 5000};
  in.c2 = {800, 40, 4000};
  in.sys = {10000, 4096, 5.0};
  in.query = {20, 0.1};
  in.q = 0.8;
  const CpuEstimate base = HhnlCpuCost(in);
  in.pruning_rate = ExpectedPruningRate(in);
  in.adaptive_merge = true;
  const CpuEstimate pruned = HhnlCpuCost(in);
  EXPECT_LT(pruned.cell_compares, base.cell_compares);
  EXPECT_LT(pruned.accumulations, base.accumulations);
  EXPECT_GT(pruned.bound_checks, 0.0);
  EXPECT_GT(pruned.pairs_pruned, 0.0);
  // The discount must beat the bound-check surcharge for the rate to be
  // worth modeling at all.
  EXPECT_LT(pruned.Total(), base.Total());

  const CpuEstimate hv_base = HvnlCpuCost(in);
  in.pruning_rate = 0;
  const CpuEstimate hv_unpruned = HvnlCpuCost(in);
  EXPECT_LT(hv_base.accumulations, hv_unpruned.accumulations);
  EXPECT_DOUBLE_EQ(hv_base.cells_decoded, hv_unpruned.cells_decoded);

  in.pruning_rate = ExpectedPruningRate(in);
  const CpuEstimate vv_pruned = VvmCpuCost(in);
  in.pruning_rate = 0;
  const CpuEstimate vv_unpruned = VvmCpuCost(in);
  EXPECT_LT(vv_pruned.accumulations, vv_unpruned.accumulations);
  EXPECT_DOUBLE_EQ(vv_pruned.cells_decoded, vv_unpruned.cells_decoded);
}

TEST(CpuModelTest, AccumulationEstimateConsistentAcrossAlgorithms) {
  CostInputs in;
  in.c1 = {1000, 50, 5000};
  in.c2 = {800, 40, 4000};
  in.sys = {10000, 4096, 5.0};
  in.query = {20, 0.1};
  in.q = 0.8;
  double a1 = HhnlCpuCost(in).accumulations;
  double a2 = HvnlCpuCost(in).accumulations;
  double a3 = VvmCpuCost(in).accumulations;
  EXPECT_NEAR(a1, a2, 1e-6 * a1);
  EXPECT_NEAR(a1, a3, 1e-6 * a1);
}

}  // namespace
}  // namespace textjoin
