#include "relational/sql_parser.h"

#include <cctype>

#include "common/logging.h"

namespace textjoin {

namespace {

enum class TokenKind {
  kIdentifier,
  kNumber,
  kString,
  kSymbol,  // punctuation / operators
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;  // identifier/number/string body or symbol spelling
};

// Uppercases ASCII for keyword comparison.
std::string Upper(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::toupper(
                          static_cast<unsigned char>(c)));
  return out;
}

class Lexer {
 public:
  explicit Lexer(const std::string& input) : input_(input) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> tokens;
    while (pos_ < input_.size()) {
      char c = input_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        tokens.push_back(LexIdentifier());
      } else if (std::isdigit(static_cast<unsigned char>(c))) {
        tokens.push_back(LexNumber());
      } else if (c == '\'' || c == '"') {
        TEXTJOIN_ASSIGN_OR_RETURN(Token t, LexString());
        tokens.push_back(std::move(t));
      } else {
        TEXTJOIN_ASSIGN_OR_RETURN(Token t, LexSymbol());
        tokens.push_back(std::move(t));
      }
    }
    tokens.push_back(Token{TokenKind::kEnd, ""});
    return tokens;
  }

 private:
  Token LexIdentifier() {
    size_t start = pos_;
    // '#' is allowed inside identifiers for the paper's "P#".
    while (pos_ < input_.size() &&
           (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
            input_[pos_] == '_' || input_[pos_] == '#')) {
      ++pos_;
    }
    return Token{TokenKind::kIdentifier, input_.substr(start, pos_ - start)};
  }

  Token LexNumber() {
    size_t start = pos_;
    while (pos_ < input_.size() &&
           std::isdigit(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
    return Token{TokenKind::kNumber, input_.substr(start, pos_ - start)};
  }

  Result<Token> LexString() {
    char quote = input_[pos_++];
    std::string body;
    while (pos_ < input_.size() && input_[pos_] != quote) {
      body.push_back(input_[pos_++]);
    }
    if (pos_ >= input_.size()) {
      return Status::InvalidArgument("unterminated string literal");
    }
    ++pos_;  // closing quote
    return Token{TokenKind::kString, std::move(body)};
  }

  Result<Token> LexSymbol() {
    // Two-character operators first.
    static constexpr const char* kTwo[] = {"<>", "!=", "<=", ">="};
    for (const char* op : kTwo) {
      if (input_.compare(pos_, 2, op) == 0) {
        pos_ += 2;
        return Token{TokenKind::kSymbol, op};
      }
    }
    char c = input_[pos_];
    if (std::string(".,()=<>*").find(c) == std::string::npos) {
      return Status::InvalidArgument(std::string("unexpected character '") +
                                     c + "'");
    }
    ++pos_;
    return Token{TokenKind::kSymbol, std::string(1, c)};
  }

  const std::string& input_;
  size_t pos_ = 0;
};

struct ColumnRef {
  std::string qualifier;  // table name or alias; may be empty
  std::string column;

  std::string ToString() const {
    return qualifier.empty() ? column : qualifier + "." + column;
  }
};

struct TableRef {
  std::string name;
  std::string alias;  // == name when absent
};

struct Condition {
  enum class Kind { kSimilarTo, kLike, kCompare } kind;
  ColumnRef lhs;
  // SIMILAR_TO:
  int64_t lambda = 0;
  ColumnRef rhs;
  // LIKE:
  std::string pattern;
  // Compare:
  CompareOp op = CompareOp::kEq;
  bool rhs_is_number = false;
  int64_t number = 0;
  std::string string_value;
};

struct ParsedQuery {
  bool explain_analyze = false;
  bool select_all = false;
  std::vector<ColumnRef> select;
  std::vector<TableRef> tables;
  std::vector<Condition> conditions;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<ParsedQuery> Run() {
    ParsedQuery q;
    if (PeekKeyword("EXPLAIN")) {
      Advance();
      TEXTJOIN_RETURN_IF_ERROR(ExpectKeyword("ANALYZE"));
      q.explain_analyze = true;
    }
    TEXTJOIN_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    if (PeekSymbol("*")) {
      Advance();
      q.select_all = true;
    } else {
      TEXTJOIN_ASSIGN_OR_RETURN(ColumnRef c, ParseColumnRef());
      q.select.push_back(c);
      while (PeekSymbol(",")) {
        Advance();
        TEXTJOIN_ASSIGN_OR_RETURN(ColumnRef more, ParseColumnRef());
        q.select.push_back(more);
      }
    }
    TEXTJOIN_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    TEXTJOIN_ASSIGN_OR_RETURN(TableRef t1, ParseTableRef());
    q.tables.push_back(t1);
    TEXTJOIN_RETURN_IF_ERROR(ExpectSymbol(","));
    TEXTJOIN_ASSIGN_OR_RETURN(TableRef t2, ParseTableRef());
    q.tables.push_back(t2);
    TEXTJOIN_RETURN_IF_ERROR(ExpectKeyword("WHERE"));
    TEXTJOIN_ASSIGN_OR_RETURN(Condition c, ParseCondition());
    q.conditions.push_back(std::move(c));
    while (PeekKeyword("AND")) {
      Advance();
      TEXTJOIN_ASSIGN_OR_RETURN(Condition more, ParseCondition());
      q.conditions.push_back(std::move(more));
    }
    if (tokens_[pos_].kind != TokenKind::kEnd) {
      return Status::InvalidArgument("trailing input after query: '" +
                                     tokens_[pos_].text + "'");
    }
    return q;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  void Advance() { ++pos_; }

  bool PeekKeyword(const char* kw) const {
    return Peek().kind == TokenKind::kIdentifier && Upper(Peek().text) == kw;
  }
  bool PeekSymbol(const char* sym) const {
    return Peek().kind == TokenKind::kSymbol && Peek().text == sym;
  }

  Status ExpectKeyword(const char* kw) {
    if (!PeekKeyword(kw)) {
      return Status::InvalidArgument(std::string("expected ") + kw +
                                     ", got '" + Peek().text + "'");
    }
    Advance();
    return Status::OK();
  }

  Status ExpectSymbol(const char* sym) {
    if (!PeekSymbol(sym)) {
      return Status::InvalidArgument(std::string("expected '") + sym +
                                     "', got '" + Peek().text + "'");
    }
    Advance();
    return Status::OK();
  }

  Result<std::string> ExpectIdentifier() {
    if (Peek().kind != TokenKind::kIdentifier) {
      return Status::InvalidArgument("expected identifier, got '" +
                                     Peek().text + "'");
    }
    std::string text = Peek().text;
    Advance();
    return text;
  }

  Result<ColumnRef> ParseColumnRef() {
    TEXTJOIN_ASSIGN_OR_RETURN(std::string first, ExpectIdentifier());
    ColumnRef ref;
    if (PeekSymbol(".")) {
      Advance();
      TEXTJOIN_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
      ref.qualifier = first;
      ref.column = col;
    } else {
      ref.column = first;
    }
    return ref;
  }

  Result<TableRef> ParseTableRef() {
    TEXTJOIN_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier());
    TableRef ref{name, name};
    // An alias is any identifier that is not a clause keyword.
    if (Peek().kind == TokenKind::kIdentifier && !PeekKeyword("WHERE")) {
      ref.alias = Peek().text;
      Advance();
    }
    return ref;
  }

  Result<Condition> ParseCondition() {
    Condition c{};
    TEXTJOIN_ASSIGN_OR_RETURN(c.lhs, ParseColumnRef());
    if (PeekKeyword("SIMILAR_TO")) {
      Advance();
      c.kind = Condition::Kind::kSimilarTo;
      TEXTJOIN_RETURN_IF_ERROR(ExpectSymbol("("));
      if (Peek().kind != TokenKind::kNumber) {
        return Status::InvalidArgument("SIMILAR_TO needs an integer lambda");
      }
      c.lambda = std::stoll(Peek().text);
      Advance();
      TEXTJOIN_RETURN_IF_ERROR(ExpectSymbol(")"));
      TEXTJOIN_ASSIGN_OR_RETURN(c.rhs, ParseColumnRef());
      return c;
    }
    if (PeekKeyword("LIKE")) {
      Advance();
      c.kind = Condition::Kind::kLike;
      if (Peek().kind != TokenKind::kString) {
        return Status::InvalidArgument("LIKE needs a string pattern");
      }
      c.pattern = Peek().text;
      Advance();
      return c;
    }
    // Comparison.
    c.kind = Condition::Kind::kCompare;
    if (Peek().kind != TokenKind::kSymbol) {
      return Status::InvalidArgument("expected comparison operator, got '" +
                                     Peek().text + "'");
    }
    const std::string sym = Peek().text;
    if (sym == "=") {
      c.op = CompareOp::kEq;
    } else if (sym == "<>" || sym == "!=") {
      c.op = CompareOp::kNe;
    } else if (sym == "<") {
      c.op = CompareOp::kLt;
    } else if (sym == "<=") {
      c.op = CompareOp::kLe;
    } else if (sym == ">") {
      c.op = CompareOp::kGt;
    } else if (sym == ">=") {
      c.op = CompareOp::kGe;
    } else {
      return Status::InvalidArgument("unknown operator '" + sym + "'");
    }
    Advance();
    if (Peek().kind == TokenKind::kNumber) {
      c.rhs_is_number = true;
      c.number = std::stoll(Peek().text);
      Advance();
    } else if (Peek().kind == TokenKind::kString) {
      c.string_value = Peek().text;
      Advance();
    } else {
      return Status::InvalidArgument("expected literal after operator");
    }
    return c;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

std::string BoundQuery::FormatRow(const QueryResultRow& row) const {
  std::string out;
  auto append_value = [&](const Table* table, int64_t r,
                          const std::string& column) {
    int64_t c = table->ColumnIndex(column);
    if (c < 0) return;
    if (!out.empty()) out += "  ";
    out += column + "=" + ValueToString(table->at(r, c));
  };
  if (select_all_) {
    for (const Column& c : query_.outer_table->schema()) {
      append_value(query_.outer_table, row.outer_row, c.name);
    }
    for (const Column& c : query_.inner_table->schema()) {
      append_value(query_.inner_table, row.inner_row, c.name);
    }
  } else {
    for (const SelectItem& item : select_) {
      // The binder guarantees each item resolves to exactly one table.
      if (item.table_or_alias == "__outer__") {
        append_value(query_.outer_table, row.outer_row, item.column);
      } else {
        append_value(query_.inner_table, row.inner_row, item.column);
      }
    }
  }
  char score[32];
  std::snprintf(score, sizeof(score), "  similarity=%.4g", row.score);
  out += score;
  return out;
}

Result<BoundQuery> SqlParser::Parse(const std::string& sql) const {
  Lexer lexer(sql);
  TEXTJOIN_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Run());
  Parser parser(std::move(tokens));
  TEXTJOIN_ASSIGN_OR_RETURN(ParsedQuery parsed, parser.Run());

  // Resolve the two table references.
  auto find_table = [&](const std::string& name) -> const Table* {
    for (const Table* t : tables_) {
      if (t->name() == name) return t;
    }
    return nullptr;
  };
  const Table* t1 = find_table(parsed.tables[0].name);
  const Table* t2 = find_table(parsed.tables[1].name);
  if (t1 == nullptr || t2 == nullptr) {
    return Status::NotFound("unknown table in FROM clause");
  }
  if (parsed.tables[0].alias == parsed.tables[1].alias) {
    return Status::InvalidArgument("duplicate table alias");
  }

  // Resolves a column reference to one of the two tables.
  auto resolve = [&](const ColumnRef& ref)
      -> Result<std::pair<const Table*, int64_t>> {
    if (!ref.qualifier.empty()) {
      const Table* t = nullptr;
      if (ref.qualifier == parsed.tables[0].alias ||
          ref.qualifier == parsed.tables[0].name) {
        t = t1;
      } else if (ref.qualifier == parsed.tables[1].alias ||
                 ref.qualifier == parsed.tables[1].name) {
        t = t2;
      } else {
        return Status::NotFound("unknown qualifier '" + ref.qualifier + "'");
      }
      int64_t c = t->ColumnIndex(ref.column);
      if (c < 0) {
        return Status::NotFound("no column " + ref.ToString());
      }
      return std::make_pair(t, c);
    }
    int64_t c1 = t1->ColumnIndex(ref.column);
    int64_t c2 = t2->ColumnIndex(ref.column);
    if (c1 >= 0 && c2 >= 0) {
      return Status::InvalidArgument("ambiguous column '" + ref.column + "'");
    }
    if (c1 >= 0) return std::make_pair(t1, c1);
    if (c2 >= 0) return std::make_pair(t2, c2);
    return Status::NotFound("no column '" + ref.column + "'");
  };

  // Locate the single SIMILAR_TO condition.
  const Condition* similar = nullptr;
  for (const Condition& c : parsed.conditions) {
    if (c.kind != Condition::Kind::kSimilarTo) continue;
    if (similar != nullptr) {
      return Status::InvalidArgument("more than one SIMILAR_TO condition");
    }
    similar = &c;
  }
  if (similar == nullptr) {
    return Status::InvalidArgument("query has no SIMILAR_TO condition");
  }

  BoundQuery bound;
  bound.query_.explain_analyze = parsed.explain_analyze;
  TEXTJOIN_ASSIGN_OR_RETURN(auto inner_rc, resolve(similar->lhs));
  TEXTJOIN_ASSIGN_OR_RETURN(auto outer_rc, resolve(similar->rhs));
  if (inner_rc.first == outer_rc.first) {
    return Status::InvalidArgument(
        "SIMILAR_TO attributes must come from different tables");
  }
  if (inner_rc.first->schema()[inner_rc.second].type != ColumnType::kText ||
      outer_rc.first->schema()[outer_rc.second].type != ColumnType::kText) {
    return Status::InvalidArgument("SIMILAR_TO needs TEXT attributes");
  }
  bound.query_.inner_table = inner_rc.first;
  bound.query_.inner_text_column =
      inner_rc.first->schema()[inner_rc.second].name;
  bound.query_.outer_table = outer_rc.first;
  bound.query_.outer_text_column =
      outer_rc.first->schema()[outer_rc.second].name;
  bound.query_.lambda = similar->lambda;

  // Bind the remaining conditions as selection predicates.
  for (const Condition& c : parsed.conditions) {
    if (c.kind == Condition::Kind::kSimilarTo) continue;
    TEXTJOIN_ASSIGN_OR_RETURN(auto rc, resolve(c.lhs));
    const Table* table = rc.first;
    const Column& column = table->schema()[rc.second];
    std::unique_ptr<Predicate> pred;
    if (c.kind == Condition::Kind::kLike) {
      if (column.type != ColumnType::kString) {
        return Status::InvalidArgument("LIKE needs a STRING column");
      }
      pred = std::make_unique<LikePredicate>(column.name, c.pattern);
    } else {
      Value constant;
      if (c.rhs_is_number) {
        if (column.type != ColumnType::kInt) {
          return Status::InvalidArgument("numeric literal vs non-INT column");
        }
        constant = c.number;
      } else {
        if (column.type != ColumnType::kString) {
          return Status::InvalidArgument(
              "string literal vs non-STRING column");
        }
        constant = c.string_value;
      }
      pred = std::make_unique<ComparePredicate>(column.name, c.op,
                                                std::move(constant));
    }
    if (table == bound.query_.inner_table) {
      bound.query_.inner_predicates.push_back(pred.get());
    } else {
      bound.query_.outer_predicates.push_back(pred.get());
    }
    bound.owned_predicates_.push_back(std::move(pred));
  }

  // Bind the select list (tagging each item with the side it came from so
  // FormatRow can pick the right result row).
  bound.select_all_ = parsed.select_all;
  for (const ColumnRef& ref : parsed.select) {
    TEXTJOIN_ASSIGN_OR_RETURN(auto rc, resolve(ref));
    SelectItem item;
    item.table_or_alias =
        rc.first == bound.query_.outer_table ? "__outer__" : "__inner__";
    item.column = rc.first->schema()[rc.second].name;
    bound.select_.push_back(std::move(item));
  }
  return bound;
}

}  // namespace textjoin
