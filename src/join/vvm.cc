#include "join/vvm.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "common/math_util.h"
#include "index/posting_cursor.h"
#include "kernel/aligned.h"
#include "kernel/dispatch.h"
#include "obs/query_stats.h"

namespace textjoin {

// Accumulator keys pack the (outer, inner) document pair into 64 bits:
// outer in the high word, inner in the low word (document numbers are
// 3 bytes, so this is lossless).

namespace {

// Refined-admission probe budget: the block-refined bound walk over the
// remaining shared terms stops after this many terms without a verdict and
// admits conservatively, so one admission check never costs more than a
// constant number of block lookups.
constexpr size_t kRefineProbeLimit = 64;

}  // namespace

int64_t VvmJoin::Passes(const JoinContext& ctx, const JoinSpec& spec) {
  const double P = static_cast<double>(ctx.sys.page_size);
  // A governor memory budget shrinks the matrix partition M: more, smaller
  // passes over the same data, identical results.
  const double B = static_cast<double>(EffectiveBufferPages(ctx));
  const double M = B - std::ceil(ctx.inner_index->avg_entry_size_pages()) -
                   std::ceil(ctx.outer_index->avg_entry_size_pages());
  if (M <= 0.0) return -1;
  const double m =
      spec.outer_subset.empty()
          ? static_cast<double>(ctx.outer->num_documents())
          : static_cast<double>(spec.outer_subset.size());
  const double SM = 4.0 * spec.delta *
                    static_cast<double>(ctx.inner->num_documents()) * m / P;
  return std::max<int64_t>(1, CeilPages(SM / M));
}

Result<JoinResult> VvmJoin::Run(const JoinContext& ctx,
                                const JoinSpec& spec) {
  TEXTJOIN_RETURN_IF_ERROR(ValidateJoinInputs(ctx, spec));
  if (ctx.inner_index == nullptr || ctx.outer_index == nullptr) {
    return Status::InvalidArgument(
        "VVM needs the inverted files on both collections");
  }
  int64_t passes = Passes(ctx, spec);
  if (passes < 0) {
    return Status::ResourceExhausted(
        "VVM: buffer cannot hold two inverted entries");
  }

  const std::vector<DocId> participating = ParticipatingOuterDocs(ctx, spec);
  // No point in more passes than participating documents.
  passes = std::min<int64_t>(
      passes, std::max<int64_t>(1, static_cast<int64_t>(participating.size())));
  // Map every outer document to its subcollection (pass index), -1 if it
  // does not participate. Subcollections are contiguous equal-count slices
  // of the participating documents.
  std::vector<int32_t> pass_of(
      static_cast<size_t>(ctx.outer->num_documents()), -1);
  const int64_t per_pass =
      CeilDiv(static_cast<int64_t>(participating.size()),
              std::max<int64_t>(passes, 1));
  for (size_t i = 0; i < participating.size(); ++i) {
    pass_of[participating[i]] =
        per_pass == 0 ? 0 : static_cast<int32_t>(i / per_pass);
  }

  const std::vector<char> inner_member = InnerMembership(ctx, spec);
  QueryStatsCollector* stats = ctx.stats;
  CpuStats* cpu = stats != nullptr ? stats->cpu() : nullptr;
  if (stats != nullptr) {
    stats->SetRootLabel("VVM");
    stats->SetCounter("passes", passes);
  }

  // Top-lambda admission suppression (join/pruning.h). The merge visits
  // shared terms in ascending order, so a pair first seen at shared term t
  // can accumulate at most its contribution at t plus the suffix of
  // per-term catalog bounds max_w1(t') * max_w2(t') * idf(t')^2 over the
  // shared terms after t. If that, finalized with the pair's exact norms
  // (both documents are known), falls strictly below the outer document's
  // lambda-th best finalized partial, the accumulator entry is never
  // created. Existing entries always accumulate; I/O is untouched.
  //
  // PruningConfig::block_skip sharpens this with the per-block maxima
  // (MaxWeightForDoc, index/inverted_file.h): refined admission refuses
  // pairs whose block-refined suffix bound cannot reach theta, pair
  // trimming retires accumulated pairs that provably cannot qualify, and
  // once a term's coarse bound closes admission for an outer document the
  // C1 entry is walked block-wise, skipping (undecoded) every block whose
  // document span holds none of that outer document's live pairs.
  const bool suppress = spec.pruning.bound_skip;
  const bool block_feature = suppress && spec.pruning.block_skip;
  const bool cosine = ctx.similarity->config.cosine_normalize;
  const auto& E1 = ctx.inner_index->entries();
  const auto& E2 = ctx.outer_index->entries();
  std::vector<TermId> shared_terms;
  std::vector<double> shared_suffix;  // size shared_terms + 1, trailing 0
  std::vector<int64_t> shared_e1, shared_e2;  // entry indexes per shared term
  std::vector<double> shared_factor;          // idf^2 per shared term
  std::vector<double> inv_n1, inv_n2;
  std::vector<double> theta;  // per outer document; -1 = not established
  double max_inv1 = 1.0;      // largest eligible 1/norm on the C1 side
  int64_t suppressed_candidates = 0;
  int64_t theta_rebuilds = 0;
  int64_t blocks_skipped = 0;
  int64_t pairs_trimmed = 0;
  if (suppress) {
    std::vector<double> term_bound;
    size_t i = 0, j = 0;
    while (i < E1.size() && j < E2.size()) {
      if (E1[i].term < E2[j].term) {
        ++i;
      } else if (E2[j].term < E1[i].term) {
        ++j;
      } else {
        shared_terms.push_back(E1[i].term);
        shared_e1.push_back(static_cast<int64_t>(i));
        shared_e2.push_back(static_cast<int64_t>(j));
        shared_factor.push_back(ctx.similarity->TermFactor(E1[i].term));
        term_bound.push_back(static_cast<double>(E1[i].max_weight) *
                             static_cast<double>(E2[j].max_weight) *
                             shared_factor.back());
        ++i;
        ++j;
      }
    }
    shared_suffix.assign(term_bound.size() + 1, 0.0);
    for (size_t k = term_bound.size(); k-- > 0;) {
      shared_suffix[k] = shared_suffix[k + 1] + term_bound[k];
    }
    if (cpu != nullptr) {
      cpu->bound_checks += static_cast<int64_t>(shared_terms.size());
    }
    if (cosine) {
      inv_n1.resize(static_cast<size_t>(ctx.inner->num_documents()));
      max_inv1 = 0.0;
      for (size_t d = 0; d < inv_n1.size(); ++d) {
        if (!inner_member.empty() && !inner_member[d]) {
          inv_n1[d] = 0.0;
          continue;
        }
        const double n = ctx.similarity->inner_norms.of(static_cast<DocId>(d));
        inv_n1[d] = n > 0 ? 1.0 / n : 0.0;
        max_inv1 = std::max(max_inv1, inv_n1[d]);
      }
      inv_n2.resize(static_cast<size_t>(ctx.outer->num_documents()));
      for (size_t d = 0; d < inv_n2.size(); ++d) {
        const double n = ctx.similarity->outer_norms.of(static_cast<DocId>(d));
        inv_n2[d] = n > 0 ? 1.0 / n : 0.0;
      }
    }
    theta.resize(static_cast<size_t>(ctx.outer->num_documents()));
  }

  // Can the pair (inner, outer) with partial score `partial` still reach
  // `th`? Adds the block-refined bound of each remaining shared term
  // (starting at index `from`), bailing out as soon as the bound reaches
  // th (yes), the coarse tail rules it out (no), or the probe budget runs
  // out (conservative yes).
  auto can_reach_theta = [&](double partial, DocId inner_doc, DocId outer_doc,
                             size_t from, double inv_denom, double th) {
    double bound = partial;
    const size_t n = shared_terms.size();
    const size_t limit = std::min(n, from + kRefineProbeLimit);
    size_t k = from;
    for (; k < limit; ++k) {
      if (bound * inv_denom * kBoundSlack >= th) return true;
      if ((bound + shared_suffix[k]) * inv_denom * kBoundSlack < th) {
        return false;
      }
      bound +=
          static_cast<double>(MaxWeightForDoc(
              E1[static_cast<size_t>(shared_e1[k])], inner_doc)) *
          static_cast<double>(MaxWeightForDoc(
              E2[static_cast<size_t>(shared_e2[k])], outer_doc)) *
          shared_factor[k];
    }
    if (k < n) return true;  // probe budget exhausted: admit conservatively
    return bound * inv_denom * kBoundSlack >= th;
  };

  JoinResult result;
  result.reserve(participating.size());
  std::unordered_map<uint64_t, double> acc;
  // Per-cell contributions of one C1 entry against one outer cell, from
  // the dispatched scoring kernel. Sized once to the largest C1 entry so
  // the merge's accumulation loops never reallocate.
  kernel::DoubleBuffer contribs;
  {
    int64_t max_cells = 0;
    for (const auto& e : E1) max_cells = std::max(max_cells, e.cell_count);
    contribs.resize(static_cast<size_t>(max_cells));
  }
  std::unordered_map<DocId, std::vector<double>> theta_groups;  // scratch
  // Refused/retired pairs (block feature): a refusal is permanent — the
  // remaining potential only shrinks while theta only grows — so each pair
  // is bound-checked at most once.
  std::unordered_set<uint64_t> dead;
  // Live C1 documents per outer document (the accumulator's key set,
  // grouped), ordered so a posting block's document span can be probed.
  std::unordered_map<DocId, std::set<DocId>> members;

  for (int64_t pass = 0; pass < passes; ++pass) {
    TEXTJOIN_RETURN_IF_ERROR(GovernorCheckpoint(ctx, "VVM merge pass"));
    acc.clear();
    dead.clear();
    members.clear();
    if (suppress) theta.assign(theta.size(), -1.0);
    int64_t admissions_since_rebuild = 0;
    size_t sp = 0;  // monotone cursor into shared_terms

    // This pass's contiguous slice of the (ascending) participating outer
    // documents. Every outer cell outside [pass_first, pass_last] fails the
    // pass filter, so a C2 posting block whose document span misses the
    // slice can be passed over undecoded.
    const size_t slice_lo = static_cast<size_t>(pass * per_pass);
    const size_t slice_hi = std::min(
        participating.size(), static_cast<size_t>((pass + 1) * per_pass));
    const bool slice_empty = slice_lo >= slice_hi;
    const DocId pass_first = slice_empty ? 0 : participating[slice_lo];
    const DocId pass_last = slice_empty ? 0 : participating[slice_hi - 1];

    // Recompute every participating outer document's threshold from the
    // finalized partial accumulator values. Partials only grow and live
    // entries are never removed below theta-reachability, so a stale theta
    // is merely smaller — still a valid lower bound on the final lambda-th
    // best score. Rebuild cost is O(acc), amortized by requiring as many
    // new admissions in between. After a rebuild, pairs whose partial plus
    // remaining coarse bound (`rem_incl`, the suffix including the current
    // term) cannot reach theta are retired: their final score is provably
    // below the final lambda-th best, so dropping them is invisible in the
    // result. The pairs that defined theta survive (bound >= partial).
    auto maybe_rebuild_theta = [&](double rem_incl) {
      if (!suppress || spec.lambda <= 0) return;
      if (admissions_since_rebuild <
          std::max<int64_t>(4096, static_cast<int64_t>(acc.size()))) {
        return;
      }
      theta_groups.clear();
      for (const auto& [key, a] : acc) {
        const DocId outer_doc = static_cast<DocId>(key >> 32);
        const DocId inner_doc = static_cast<DocId>(key & 0xFFFFFFFFu);
        theta_groups[outer_doc].push_back(
            ctx.similarity->Finalize(a, inner_doc, outer_doc));
      }
      for (auto& [outer_doc, values] : theta_groups) {
        if (static_cast<int64_t>(values.size()) < spec.lambda) continue;
        auto nth = values.begin() + (spec.lambda - 1);
        std::nth_element(values.begin(), nth, values.end(),
                         [](double a, double b) { return a > b; });
        theta[outer_doc] = *nth;
      }
      admissions_since_rebuild = 0;
      ++theta_rebuilds;
      if (!block_feature) return;
      for (auto it = acc.begin(); it != acc.end();) {
        const DocId outer_doc = static_cast<DocId>(it->first >> 32);
        const DocId inner_doc = static_cast<DocId>(it->first & 0xFFFFFFFFu);
        const double th = theta[outer_doc];
        if (th < 0) {
          ++it;
          continue;
        }
        const double inv_denom =
            cosine ? inv_n1[inner_doc] * inv_n2[outer_doc] : 1.0;
        if ((it->second + rem_incl) * inv_denom * kBoundSlack < th) {
          dead.insert(it->first);
          members[outer_doc].erase(inner_doc);
          it = acc.erase(it);
          ++pairs_trimmed;
          if (cpu != nullptr) ++cpu->accumulators_trimmed;
        } else {
          ++it;
        }
      }
    };

    PhaseScope merge(stats, phase::kMergeScan);
    // Parallel scan of both inverted files, merging on term number.
    auto scan1 = ctx.inner_index->Scan();
    auto scan2 = ctx.outer_index->Scan();
    while (!scan1.Done() && !scan2.Done()) {
      TermId t1 = scan1.NextTerm();
      TermId t2 = scan2.NextTerm();
      if (t1 < t2) {
        if (cpu != nullptr) cpu->cells_decoded += scan1.NextCellCount();
        TEXTJOIN_RETURN_IF_ERROR(scan1.SkipEntry());
      } else if (t2 < t1) {
        if (cpu != nullptr) cpu->cells_decoded += scan2.NextCellCount();
        TEXTJOIN_RETURN_IF_ERROR(scan2.SkipEntry());
      } else if (!suppress) {
        TEXTJOIN_ASSIGN_OR_RETURN(std::vector<ICell> e1, scan1.Next());
        TEXTJOIN_ASSIGN_OR_RETURN(std::vector<ICell> e2, scan2.Next());
        if (cpu != nullptr) {
          cpu->cells_decoded +=
              static_cast<int64_t>(e1.size() + e2.size());
          // Every C2 cell is visited for the pass-membership check.
          cpu->cell_compares += static_cast<int64_t>(e2.size());
        }
        const double factor = ctx.similarity->TermFactor(t1);
        for (const ICell& oc : e2) {
          if (pass_of[oc.doc] != pass) continue;
          const double w2 = static_cast<double>(oc.weight);
          const uint64_t base = static_cast<uint64_t>(oc.doc) << 32;
          if (cpu != nullptr) {
            cpu->accumulations += static_cast<int64_t>(e1.size());
            cpu->cell_compares += static_cast<int64_t>(e1.size());
          }
          // Vectorized contributions, sequential in-document-order scatter
          // — bit-identical to the scalar accumulation loop.
          const int64_t n1 = static_cast<int64_t>(e1.size());
          kernel::Active().scale_cells(e1.data(), n1, w2, factor,
                                       contribs.data());
          for (int64_t k = 0; k < n1; ++k) {
            const ICell& icell = e1[static_cast<size_t>(k)];
            if (!inner_member.empty() && !inner_member[icell.doc]) continue;
            acc[base | icell.doc] += contribs[static_cast<size_t>(k)];
          }
        }
      } else {
        // Both entries are read raw and decoded block by block: C2 blocks
        // whose document span misses this pass's outer slice stay
        // undecoded, and outer cells whose admission the coarse bound has
        // closed touch only the C1 blocks holding their live pairs.
        const InvertedFile::EntryMeta* meta1 = &scan1.NextMeta();
        TEXTJOIN_ASSIGN_OR_RETURN(std::vector<uint8_t> raw1,
                                  scan1.NextRaw());
        BlockLazyEntry e1(meta1, ctx.inner_index->compression(),
                          std::move(raw1));
        const InvertedFile::EntryMeta* meta2 = &scan2.NextMeta();
        TEXTJOIN_ASSIGN_OR_RETURN(std::vector<uint8_t> raw2,
                                  scan2.NextRaw());
        BlockLazyEntry e2(meta2, ctx.outer_index->compression(),
                          std::move(raw2));
        if (!block_feature) {
          // Blocks off: decode both entries up front, exactly like the
          // plain merge scan, so the ablation baseline's decode counters
          // match the pre-block executor.
          int64_t newly1 = 0, newly2 = 0;
          TEXTJOIN_RETURN_IF_ERROR(e1.All(&newly1).status());
          TEXTJOIN_RETURN_IF_ERROR(e2.All(&newly2).status());
          if (cpu != nullptr) cpu->cells_decoded += newly1 + newly2;
        }
        const double factor = ctx.similarity->TermFactor(t1);
        // Bound on everything a pair can still gain after this term.
        while (sp < shared_terms.size() && shared_terms[sp] < t1) ++sp;
        const double rem_after = shared_suffix[sp + 1];
        maybe_rebuild_theta(shared_suffix[sp]);
        const double entry_max1 = static_cast<double>(meta1->max_weight);
        auto process_cell = [&](const ICell& oc) -> Status {
          if (pass_of[oc.doc] != pass) return Status::OK();
          const double w2 = static_cast<double>(oc.weight);
          const uint64_t base = static_cast<uint64_t>(oc.doc) << 32;
          const double th = theta[oc.doc];
          const double inv2 = cosine ? inv_n2[oc.doc] : 1.0;
          int64_t performed = 0;

          // Coarse closure: when even the largest possible new pair at
          // this term cannot reach theta, only existing pairs accumulate —
          // walk the C1 entry block-wise over this outer document's live
          // pairs, skipping spans that hold none.
          const bool closed =
              th >= 0 &&
              (entry_max1 * w2 * factor + rem_after) * inv2 * max_inv1 *
                      kBoundSlack <
                  th;
          if (block_feature && closed && e1.num_blocks() > 0) {
            if (cpu != nullptr) ++cpu->bound_checks;
            auto mit = members.find(oc.doc);
            if (mit == members.end() || mit->second.empty()) {
              blocks_skipped += e1.num_blocks();
              if (cpu != nullptr) cpu->blocks_skipped += e1.num_blocks();
              return Status::OK();
            }
            const std::set<DocId>& live = mit->second;
            int64_t walk_compares = 0;
            for (int64_t b = 0; b < e1.num_blocks(); ++b) {
              const auto& bm = e1.block(b);
              ++walk_compares;  // block span probe
              auto lo = live.lower_bound(bm.first_doc);
              if (lo == live.end() || *lo > bm.last_doc) {
                ++blocks_skipped;
                if (cpu != nullptr) ++cpu->blocks_skipped;
                continue;
              }
              int64_t newly = 0;
              TEXTJOIN_ASSIGN_OR_RETURN(const ICell* cells,
                                        e1.Block(b, &newly));
              if (cpu != nullptr) cpu->cells_decoded += newly;
              const size_t count = static_cast<size_t>(bm.cell_count);
              for (auto m = lo; m != live.end() && *m <= bm.last_doc; ++m) {
                // Binary search for the member inside the decoded block,
                // metering each probe as one merge-walk compare.
                size_t blo = 0, bhi = count;
                while (blo < bhi) {
                  ++walk_compares;
                  const size_t mid = (blo + bhi) / 2;
                  if (cells[mid].doc < *m) {
                    blo = mid + 1;
                  } else {
                    bhi = mid;
                  }
                }
                if (blo >= count || cells[blo].doc != *m) continue;
                acc[base | cells[blo].doc] +=
                    static_cast<double>(cells[blo].weight) * w2 * factor;
                ++performed;
              }
            }
            if (cpu != nullptr) {
              cpu->accumulations += performed;
              cpu->cell_compares += walk_compares;
            }
            return Status::OK();
          }

          int64_t newly = 0;
          TEXTJOIN_ASSIGN_OR_RETURN(const kernel::ICellBuffer* cells1,
                                    e1.All(&newly));
          if (cpu != nullptr) {
            cpu->cells_decoded += newly;
            // The open walk visits every C1 cell for this outer cell.
            cpu->cell_compares += static_cast<int64_t>(cells1->size());
          }
          const int64_t n1 = static_cast<int64_t>(cells1->size());
          kernel::Active().scale_cells(cells1->data(), n1, w2, factor,
                                       contribs.data());
          for (int64_t k1 = 0; k1 < n1; ++k1) {
            const ICell& icell = (*cells1)[static_cast<size_t>(k1)];
            if (!inner_member.empty() && !inner_member[icell.doc]) continue;
            const double contrib = contribs[static_cast<size_t>(k1)];
            auto it = acc.find(base | icell.doc);
            if (it != acc.end()) {
              it->second += contrib;
              ++performed;
              continue;
            }
            if (spec.lambda == 0) {
              ++suppressed_candidates;
              if (cpu != nullptr) ++cpu->candidates_suppressed;
              continue;
            }
            if (block_feature && dead.count(base | icell.doc) > 0) {
              ++suppressed_candidates;
              if (cpu != nullptr) ++cpu->candidates_suppressed;
              continue;
            }
            if (th >= 0) {
              if (cpu != nullptr) ++cpu->bound_checks;
              const double inv_denom =
                  cosine ? inv_n1[icell.doc] * inv2 : 1.0;
              if ((contrib + rem_after) * inv_denom * kBoundSlack < th) {
                ++suppressed_candidates;
                if (cpu != nullptr) ++cpu->candidates_suppressed;
                if (block_feature) dead.insert(base | icell.doc);
                continue;
              }
              if (block_feature &&
                  !can_reach_theta(contrib, icell.doc, oc.doc, sp + 1,
                                   inv_denom, th)) {
                ++suppressed_candidates;
                if (cpu != nullptr) ++cpu->candidates_suppressed;
                dead.insert(base | icell.doc);
                continue;
              }
            }
            acc.emplace(base | icell.doc, contrib);
            if (block_feature) members[oc.doc].insert(icell.doc);
            ++performed;
            ++admissions_since_rebuild;
          }
          if (cpu != nullptr) cpu->accumulations += performed;
          return Status::OK();
        };

        // C2 traversal. With the block feature on, blocks whose document
        // span misses [pass_first, pass_last] hold no cell of this pass's
        // subcollection — they are passed over undecoded, so a multi-pass
        // run stops re-decoding (and re-filtering) the whole outer entry
        // once per pass. Blocks off decodes the full entry (parity with
        // the pre-block executor); All() is already cached then.
        if (block_feature && e2.num_blocks() > 0) {
          for (int64_t b2 = 0; b2 < e2.num_blocks(); ++b2) {
            const auto& bm2 = e2.block(b2);
            if (slice_empty || bm2.last_doc < pass_first ||
                bm2.first_doc > pass_last) {
              ++blocks_skipped;
              if (cpu != nullptr) ++cpu->blocks_skipped;
              continue;
            }
            int64_t newly2 = 0;
            TEXTJOIN_ASSIGN_OR_RETURN(const ICell* cells2,
                                      e2.Block(b2, &newly2));
            if (cpu != nullptr) {
              cpu->cells_decoded += newly2;
              // Every decoded C2 cell is visited for the pass filter.
              cpu->cell_compares += static_cast<int64_t>(bm2.cell_count);
            }
            for (int64_t k = 0; k < bm2.cell_count; ++k) {
              TEXTJOIN_RETURN_IF_ERROR(process_cell(cells2[k]));
            }
          }
        } else {
          int64_t newly2 = 0;
          TEXTJOIN_ASSIGN_OR_RETURN(const kernel::ICellBuffer* cells2,
                                    e2.All(&newly2));
          if (cpu != nullptr) {
            cpu->cells_decoded += newly2;
            cpu->cell_compares += static_cast<int64_t>(cells2->size());
          }
          for (const ICell& oc : *cells2) {
            TEXTJOIN_RETURN_IF_ERROR(process_cell(oc));
          }
        }
      }
    }
    // The scan's one-pass property covers the whole file: drain whichever
    // side is left so the measured I/O equals I1 + I2 per pass, as the
    // cost model assumes.
    while (!scan1.Done()) {
      if (cpu != nullptr) cpu->cells_decoded += scan1.NextCellCount();
      TEXTJOIN_RETURN_IF_ERROR(scan1.SkipEntry());
    }
    while (!scan2.Done()) {
      if (cpu != nullptr) cpu->cells_decoded += scan2.NextCellCount();
      TEXTJOIN_RETURN_IF_ERROR(scan2.SkipEntry());
    }

    // Emit results for this pass's subcollection, ascending by document.
    TEXTJOIN_RETURN_IF_ERROR(GovernorCheckpoint(ctx, "VVM matrix partition"));
    const size_t lo = slice_lo;
    const size_t hi = slice_hi;
    std::unordered_map<DocId, TopKAccumulator> heaps;
    for (size_t i = lo; i < hi; ++i) {
      heaps.emplace(participating[i], TopKAccumulator(spec.lambda));
    }
    if (cpu != nullptr) {
      cpu->heap_offers += static_cast<int64_t>(acc.size());
    }
    for (const auto& [key, a] : acc) {
      DocId outer_doc = static_cast<DocId>(key >> 32);
      DocId inner_doc = static_cast<DocId>(key & 0xFFFFFFFFu);
      heaps.at(outer_doc).Add(
          inner_doc, ctx.similarity->Finalize(a, inner_doc, outer_doc));
    }
    for (size_t i = lo; i < hi; ++i) {
      result.push_back(OuterMatches{participating[i],
                                    heaps.at(participating[i]).TakeSorted()});
    }
  }
  if (stats != nullptr && suppress) {
    stats->SetCounter("suppressed_candidates", suppressed_candidates);
    stats->SetCounter("theta_rebuilds", theta_rebuilds);
    if (block_feature) {
      stats->SetCounter("blocks_skipped", blocks_skipped);
      stats->SetCounter("accumulators_trimmed", pairs_trimmed);
    }
  }
  return result;
}

}  // namespace textjoin
