#ifndef TEXTJOIN_SIM_TREC_PROFILES_H_
#define TEXTJOIN_SIM_TREC_PROFILES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cost/params.h"

namespace textjoin {

// Statistics of the three ARPA/NIST (TREC-1) collections used by the
// paper's simulation, copied from the table in Section 6. The last three
// values are the paper's own estimates based on |t#| = 3 (they follow from
// the first three and P = 4096; we re-derive them in bench_table1_stats).
struct TrecProfile {
  std::string name;
  int64_t num_documents;        // #documents
  int64_t terms_per_doc;        // #terms per doc (average)
  int64_t distinct_terms;       // total # of distinct terms
  int64_t collection_pages;     // collection size in pages (paper's value)
  double avg_doc_pages;         // avg. size of a document (paper's value)
  double avg_entry_pages;       // avg. size of an inverted entry (paper's)
};

// WSJ: Wall Street Journal. Mid-sized documents, mid-sized count.
const TrecProfile& WsjProfile();
// FR: Federal Register. Fewer but larger documents.
const TrecProfile& FrProfile();
// DOE: Department of Energy. More but smaller documents.
const TrecProfile& DoeProfile();

// All three, in the paper's column order (WSJ, FR, DOE).
const std::vector<TrecProfile>& AllTrecProfiles();

// Cost-model statistics from a profile.
CollectionStatistics ToStatistics(const TrecProfile& profile);

}  // namespace textjoin

#endif  // TEXTJOIN_SIM_TREC_PROFILES_H_
