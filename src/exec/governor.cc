#include "exec/governor.h"

#include <string>

namespace textjoin {

QueryGovernor::QueryGovernor(GovernorLimits limits)
    : limits_(limits),
      cancel_flag_(std::make_shared<std::atomic<bool>>(false)),
      start_(std::chrono::steady_clock::now()) {}

double QueryGovernor::ElapsedMs() const {
  const auto wall = std::chrono::steady_clock::now() - start_;
  return std::chrono::duration<double, std::milli>(wall).count() +
         charged_ms_;
}

Status QueryGovernor::Checkpoint(const char* where) {
  ++checkpoints_;
  if (cancel_at_checkpoint_ > 0 && checkpoints_ >= cancel_at_checkpoint_) {
    Cancel();
  }
  return Evaluate(where, checkpoints_);
}

Status QueryGovernor::PollIo() {
  ++io_polls_;
  return Evaluate("page read", io_polls_);
}

Status QueryGovernor::Evaluate(const char* where, int64_t ordinal) {
  if (cancelled()) {
    if (time_to_cancel_ms_ < 0) time_to_cancel_ms_ = ElapsedMs();
    return Status::Cancelled("query cancelled at " + std::string(where) +
                             " #" + std::to_string(ordinal));
  }
  if (limits_.deadline_ms > 0 && ElapsedMs() > limits_.deadline_ms) {
    if (time_to_cancel_ms_ < 0) time_to_cancel_ms_ = ElapsedMs();
    // Latch the flag so every other observer of this query (workers,
    // storage-layer polls) stops at its next cancellation point instead of
    // re-deriving the deadline.
    Cancel();
    return Status::DeadlineExceeded(
        "deadline of " + std::to_string(limits_.deadline_ms) +
        " ms exceeded at " + std::string(where) + " #" +
        std::to_string(ordinal));
  }
  return Status::OK();
}

int64_t QueryGovernor::CapBufferPages(int64_t requested) {
  if (limits_.memory_budget_pages <= 0 ||
      requested <= limits_.memory_budget_pages) {
    return requested;
  }
  degraded_ = true;
  return limits_.memory_budget_pages;
}

QueryGovernor QueryGovernor::SpawnWorker() const {
  GovernorLimits child = limits_;
  if (limits_.deadline_ms > 0) {
    // Remaining makespan budget. Workers run conceptually in parallel, so
    // each gets the full remainder rather than a divided slice; a worker
    // that would outlive the query's deadline is stopped, not rationed.
    child.deadline_ms = limits_.deadline_ms - ElapsedMs();
    if (child.deadline_ms <= 0) child.deadline_ms = 1e-9;
  }
  QueryGovernor worker(child);
  worker.cancel_flag_ = cancel_flag_;  // shared: cancelling one stops all
  return worker;
}

}  // namespace textjoin
