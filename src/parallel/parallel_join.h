#ifndef TEXTJOIN_PARALLEL_PARALLEL_JOIN_H_
#define TEXTJOIN_PARALLEL_PARALLEL_JOIN_H_

#include <vector>

#include "join/executor.h"

namespace textjoin {

// Shared-nothing parallel evaluation of the text join — the Section 7
// further-work item "develop algorithms that process textual joins in
// parallel".
//
// The outer collection is range-partitioned into `workers` contiguous
// fragments; every worker owns a physical fragment of C2 plus a replica
// of C1 (and of the needed inverted files) on its own drives, and runs
// the chosen basic algorithm on its slice. Workers are independent, so
// the simulation executes them one after another with the disk heads
// reset in between (each worker's drives are dedicated) and meters each
// worker in isolation. The parallel elapsed cost is the *makespan* — the
// most expensive worker — while the total cost shows the work inflation
// parallelism causes (e.g. every VVM worker rescans its whole C1
// inverted file replica).
//
// Semantics are identical to the serial join: the concatenated worker
// results equal the single-machine result bit for bit (idf weights are
// computed against the GLOBAL collections, not per fragment).
struct ParallelJoinReport {
  JoinResult result;  // outer documents in original numbering
  std::vector<IoStats> worker_io;
  std::vector<CpuStats> worker_cpu;
  IoStats setup_io;  // partitioning + per-fragment index builds

  // Parallel elapsed cost: the most expensive worker.
  double MakespanCost(double alpha) const;
  // Total device work across workers.
  double TotalCost(double alpha) const;
};

class ParallelTextJoin {
 public:
  struct Options {
    Algorithm algorithm = Algorithm::kHhnl;
    int64_t workers = 2;
  };

  explicit ParallelTextJoin(Options options) : options_(options) {}

  // Runs the parallel join. Every worker node has its own buffer of
  // ctx.sys.buffer_pages (shared-nothing memory). spec.outer_subset is
  // not supported (partitioning already determines each worker's slice);
  // spec.inner_subset passes through.
  Result<ParallelJoinReport> Run(const JoinContext& ctx,
                                 const JoinSpec& spec) const;

 private:
  Options options_;
};

}  // namespace textjoin

#endif  // TEXTJOIN_PARALLEL_PARALLEL_JOIN_H_
