#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/random.h"
#include "dynamic/delta_join.h"
#include "dynamic/dynamic_collection.h"
#include "join/hhnl.h"
#include "join/hvnl.h"
#include "join/vvm.h"
#include "relational/database.h"
#include "storage/disk_manager.h"
#include "storage/wal.h"
#include "test_util.h"

namespace textjoin {
namespace {

using testing_util::BuildCollection;
using testing_util::JoinFixture;
using testing_util::MakeFixture;

// Crash-point sweeps honour the same seed environment variable as the
// chaos suite, so scripts/check.sh recovery can sweep schedules.
uint64_t SeedOffset() {
  const char* s = std::getenv("TEXTJOIN_CHAOS_SEED");
  return s == nullptr ? 0 : std::strtoull(s, nullptr, 10);
}

std::vector<uint8_t> Bytes(size_t n, uint8_t fill) {
  return std::vector<uint8_t>(n, fill);
}

// ---------------------------------------------------------------------------
// WAL record format and recovery classification.
// ---------------------------------------------------------------------------

TEST(WalTest, AppendRecoverRoundTrip) {
  SimulatedDisk disk(128);
  auto wal = WalWriter::Create(&disk, "log");
  ASSERT_TRUE(wal.ok());
  // Payload sizes chosen to exercise empty payloads, page-spanning records
  // and tail-page read-modify-writes.
  const std::vector<std::pair<WalRecordType, std::vector<uint8_t>>> records =
      {{WalRecordType::kInsert, Bytes(10, 1)},
       {WalRecordType::kDelete, Bytes(0, 0)},
       {WalRecordType::kInsert, Bytes(300, 2)},
       {WalRecordType::kDelete, Bytes(127, 3)}};
  for (const auto& [type, payload] : records) {
    ASSERT_TRUE(wal->Append(type, payload).ok());
  }
  auto rec = RecoverWal(&disk, wal->file());
  ASSERT_TRUE(rec.ok()) << rec.status();
  ASSERT_EQ(rec->records.size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(rec->records[i].type, records[i].first);
    EXPECT_EQ(rec->records[i].seq, i + 1);
    EXPECT_EQ(rec->records[i].payload, records[i].second);
  }
  EXPECT_EQ(rec->committed_bytes, wal->committed_bytes());
  EXPECT_EQ(rec->tail_bytes_discarded, 0);
  EXPECT_EQ(rec->next_seq, records.size() + 1);
}

TEST(WalTest, EmptyLogRecoversEmpty) {
  SimulatedDisk disk(128);
  auto wal = WalWriter::Create(&disk, "log");
  ASSERT_TRUE(wal.ok());
  auto rec = RecoverWal(&disk, wal->file());
  ASSERT_TRUE(rec.ok());
  EXPECT_TRUE(rec->records.empty());
  EXPECT_EQ(rec->committed_bytes, 0);
  EXPECT_EQ(rec->next_seq, 1u);
}

TEST(WalTest, TornTailDiscardedAndLogReusable) {
  SimulatedDisk disk(128);
  auto wal = WalWriter::Create(&disk, "log");
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal->Append(WalRecordType::kInsert, Bytes(10, 1)).ok());
  ASSERT_TRUE(wal->Append(WalRecordType::kDelete, Bytes(5, 2)).ok());
  ASSERT_TRUE(wal->Append(WalRecordType::kInsert, Bytes(40, 3)).ok());
  const int64_t committed = wal->committed_bytes();  // 31 + 26 + 61 = 118

  // Crash mid-append: the tail-page rewrite lands only a prefix of the
  // fourth record before the device dies.
  disk.InjectTornWrite(0, 125);
  Status failed = wal->Append(WalRecordType::kInsert, Bytes(200, 5));
  EXPECT_EQ(failed.code(), StatusCode::kUnavailable);
  disk.ClearWriteFault();

  auto rec = RecoverWal(&disk, wal->file());
  ASSERT_TRUE(rec.ok()) << rec.status();
  EXPECT_EQ(rec->records.size(), 3u);
  EXPECT_EQ(rec->committed_bytes, committed);
  EXPECT_LE(rec->tail_bytes_discarded, 7);
  EXPECT_EQ(rec->next_seq, 4u);

  // Open zeroes the torn region; the log accepts appends again and the
  // re-recovered history is the three survivors plus the new record.
  auto reopened = WalWriter::Open(&disk, wal->file(), *rec);
  ASSERT_TRUE(reopened.ok());
  ASSERT_TRUE(reopened->Append(WalRecordType::kDelete, Bytes(8, 9)).ok());
  auto rec2 = RecoverWal(&disk, wal->file());
  ASSERT_TRUE(rec2.ok()) << rec2.status();
  ASSERT_EQ(rec2->records.size(), 4u);
  EXPECT_EQ(rec2->records[3].seq, 4u);
  EXPECT_EQ(rec2->records[3].payload, Bytes(8, 9));
  EXPECT_EQ(rec2->tail_bytes_discarded, 0);
}

TEST(WalTest, TornWriteCoveringWholeRecordIsDurable) {
  // A torn write that happens to land the entire record is the post-write
  // state: the append reports failure, but recovery replays the record.
  SimulatedDisk disk(128);
  auto wal = WalWriter::Create(&disk, "log");
  ASSERT_TRUE(wal.ok());
  disk.InjectTornWrite(0, 128);
  EXPECT_EQ(wal->Append(WalRecordType::kInsert, Bytes(10, 4)).code(),
            StatusCode::kUnavailable);
  disk.ClearWriteFault();
  auto rec = RecoverWal(&disk, wal->file());
  ASSERT_TRUE(rec.ok()) << rec.status();
  ASSERT_EQ(rec->records.size(), 1u);
  EXPECT_EQ(rec->records[0].payload, Bytes(10, 4));
}

TEST(WalTest, FlippedByteMidLogIsDataLoss) {
  SimulatedDisk disk(128);
  auto wal = WalWriter::Create(&disk, "log");
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal->Append(WalRecordType::kInsert, Bytes(10, 1)).ok());
  ASSERT_TRUE(wal->Append(WalRecordType::kDelete, Bytes(5, 2)).ok());
  ASSERT_TRUE(wal->Append(WalRecordType::kInsert, Bytes(40, 3)).ok());

  // Damage the FIRST record: valid records follow, so this cannot be a
  // torn append — it must surface as corruption, never silent truncation.
  std::vector<uint8_t> page(128);
  ASSERT_TRUE(disk.PeekPage(wal->file(), 0, page.data()).ok());
  page[0] ^= 0xFF;
  ASSERT_TRUE(disk.WritePage(wal->file(), 0, page.data(), 128).ok());
  EXPECT_EQ(RecoverWal(&disk, wal->file()).status().code(),
            StatusCode::kDataLoss);
}

TEST(WalTest, FlippedByteInFinalRecordIsTornTail) {
  SimulatedDisk disk(128);
  auto wal = WalWriter::Create(&disk, "log");
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal->Append(WalRecordType::kInsert, Bytes(10, 1)).ok());
  ASSERT_TRUE(wal->Append(WalRecordType::kDelete, Bytes(5, 2)).ok());
  ASSERT_TRUE(wal->Append(WalRecordType::kInsert, Bytes(40, 3)).ok());

  // Damage the LAST record's payload. Indistinguishable from a torn final
  // append, so the policy is to discard it — losing an unacknowledged
  // suffix, never producing wrong data.
  std::vector<uint8_t> page(128);
  ASSERT_TRUE(disk.PeekPage(wal->file(), 0, page.data()).ok());
  page[117] ^= 0xFF;  // last payload byte: 31 + 26 + 61 = 118 total
  ASSERT_TRUE(disk.WritePage(wal->file(), 0, page.data(), 128).ok());
  auto rec = RecoverWal(&disk, wal->file());
  ASSERT_TRUE(rec.ok()) << rec.status();
  EXPECT_EQ(rec->records.size(), 2u);
  EXPECT_EQ(rec->committed_bytes, 57);  // 31 + 26
  EXPECT_EQ(rec->tail_bytes_discarded, 61);
}

// ---------------------------------------------------------------------------
// Dynamic collection crash-point harness.
// ---------------------------------------------------------------------------

struct Op {
  bool is_insert = false;
  std::vector<DCell> cells;  // insert
  DocKey del_key = 0;        // delete
};

// A scripted workload: an initial collection plus a mutation sequence
// covering base deletes, delta deletes and interleaved inserts.
struct Script {
  std::vector<std::vector<DCell>> initial;
  std::vector<Op> ops;
};

std::vector<DCell> RandomCells(Rng* rng, int64_t terms, int64_t vocab) {
  std::vector<char> used(static_cast<size_t>(vocab), 0);
  std::vector<DCell> cells;
  while (static_cast<int64_t>(cells.size()) < terms) {
    TermId t = static_cast<TermId>(rng->NextBounded(
        static_cast<uint64_t>(vocab)));
    if (used[t]) continue;
    used[t] = 1;
    cells.push_back(DCell{t, static_cast<Weight>(1 + rng->NextBounded(4))});
  }
  std::sort(cells.begin(), cells.end(),
            [](const DCell& a, const DCell& b) { return a.term < b.term; });
  return cells;
}

Script MakeScript(uint64_t seed) {
  Rng rng(seed);
  Script script;
  for (int i = 0; i < 10; ++i) {
    script.initial.push_back(RandomCells(&rng, 4, 24));
  }
  // Keys: initial docs get 1..10; inserts then 11, 12, 13.
  script.ops.push_back(Op{true, RandomCells(&rng, 4, 24), 0});
  script.ops.push_back(Op{false, {}, 3});   // base delete
  script.ops.push_back(Op{true, RandomCells(&rng, 4, 24), 0});
  script.ops.push_back(Op{false, {}, 11});  // delta delete
  script.ops.push_back(Op{true, RandomCells(&rng, 4, 24), 0});
  script.ops.push_back(Op{false, {}, 7});   // base delete
  return script;
}

std::vector<Document> Docs(const std::vector<std::vector<DCell>>& cells) {
  std::vector<Document> docs;
  docs.reserve(cells.size());
  for (const auto& c : cells) docs.push_back(Document::FromSortedCells(c));
  return docs;
}

// The test's own model of the live contents, in merged-id order (base
// docs in generation order, then alive delta docs in insertion order).
using Model = std::vector<std::pair<DocKey, std::vector<DCell>>>;

Model InitialModel(const Script& script) {
  Model m;
  for (size_t i = 0; i < script.initial.size(); ++i) {
    m.emplace_back(static_cast<DocKey>(i) + 1, script.initial[i]);
  }
  return m;
}

void ApplyToModel(Model* m, const Op& op, DocKey* next_key) {
  if (op.is_insert) {
    m->emplace_back((*next_key)++, op.cells);
    return;
  }
  for (auto it = m->begin(); it != m->end(); ++it) {
    if (it->first == op.del_key) {
      m->erase(it);
      return;
    }
  }
  FAIL() << "script deletes unknown key " << op.del_key;
}

std::vector<DocKey> ModelKeys(const Model& m) {
  std::vector<DocKey> keys;
  keys.reserve(m.size());
  for (const auto& [key, cells] : m) keys.push_back(key);
  return keys;
}

Status ApplyOp(DynamicCollection* dc, const Op& op) {
  if (op.is_insert) {
    return dc->Insert(Document::FromSortedCells(op.cells)).status();
  }
  return dc->Delete(op.del_key);
}

// The core acceptance check: a self-join of the dynamic collection under
// each executor must be bit-identical (scores compared with ==) to the
// same executor over a from-scratch rebuild of the live documents.
void VerifyMatchesRebuild(const DynamicCollection& dc, const Model& model,
                          const SimilarityConfig& config) {
  ASSERT_EQ(dc.LiveKeys(), ModelKeys(model));
  if (model.empty()) return;

  const int64_t page_size = dc.base().disk()->page_size();
  SimulatedDisk ref_disk(page_size);
  std::vector<std::vector<DCell>> docs;
  docs.reserve(model.size());
  for (const auto& [key, cells] : model) docs.push_back(cells);
  auto fixture = MakeFixture(&ref_disk,
                             BuildCollection(&ref_disk, "ref_i", docs),
                             BuildCollection(&ref_disk, "ref_o", docs),
                             config);
  JoinSpec spec;
  spec.lambda = 4;
  spec.similarity = config;
  JoinContext ref_ctx = fixture->Context(1000);

  DynamicJoinSide side = MakeJoinSide(dc);
  SystemParams sys{1000, page_size, 5.0};

  // merged doc id -> live position (the dense id a rebuild would assign).
  std::unordered_map<DocId, int64_t> pos;
  {
    int64_t p = 0;
    for (int64_t d = 0; d < dc.base().num_documents(); ++d) {
      if (dc.base_alive()[d]) pos[static_cast<DocId>(d)] = p++;
    }
    for (size_t j = 0; j < side.delta.size(); ++j) {
      pos[static_cast<DocId>(dc.base().num_documents() + j)] = p++;
    }
  }

  for (Algorithm algo :
       {Algorithm::kHhnl, Algorithm::kHvnl, Algorithm::kVvm}) {
    SCOPED_TRACE(AlgorithmName(algo));
    Result<JoinResult> ref(Status::OK());
    switch (algo) {
      case Algorithm::kHhnl:
        ref = HhnlJoin().Run(ref_ctx, spec);
        break;
      case Algorithm::kHvnl:
        ref = HvnlJoin().Run(ref_ctx, spec);
        break;
      case Algorithm::kVvm:
        ref = VvmJoin().Run(ref_ctx, spec);
        break;
    }
    ASSERT_TRUE(ref.ok()) << ref.status();
    Result<JoinResult> dyn =
        DynamicJoin(side, side, spec, sys, nullptr, nullptr, &algo);
    ASSERT_TRUE(dyn.ok()) << dyn.status();
    ASSERT_EQ(dyn->size(), ref->size());
    for (size_t i = 0; i < ref->size(); ++i) {
      SCOPED_TRACE("outer row " + std::to_string(i));
      EXPECT_EQ(pos.at((*dyn)[i].outer_doc),
                static_cast<int64_t>((*ref)[i].outer_doc));
      ASSERT_EQ((*dyn)[i].matches.size(), (*ref)[i].matches.size());
      for (size_t j = 0; j < (*ref)[i].matches.size(); ++j) {
        EXPECT_EQ(pos.at((*dyn)[i].matches[j].doc),
                  static_cast<int64_t>((*ref)[i].matches[j].doc));
        EXPECT_EQ((*dyn)[i].matches[j].score, (*ref)[i].matches[j].score);
      }
    }
  }
}

SimilarityConfig HardestConfig() {
  SimilarityConfig config;
  config.cosine_normalize = true;
  config.use_idf = true;
  return config;
}

TEST(DynamicCollectionTest, InsertDeleteCompactReopenRoundTrip) {
  const uint64_t seed = 91 + SeedOffset();
  const Script script = MakeScript(seed);
  SimulatedDisk disk(512);
  auto dc = DynamicCollection::Create(&disk, "dyn", Docs(script.initial));
  ASSERT_TRUE(dc.ok()) << dc.status();

  Model model = InitialModel(script);
  DocKey next_key = static_cast<DocKey>(script.initial.size()) + 1;
  for (const Op& op : script.ops) {
    ASSERT_TRUE(ApplyOp(dc->get(), op).ok());
    ApplyToModel(&model, op, &next_key);
    if (::testing::Test::HasFatalFailure()) return;
  }
  VerifyMatchesRebuild(**dc, model, HardestConfig());
  if (::testing::Test::HasFatalFailure()) return;

  // Compaction folds everything; contents and join results are unchanged.
  const int64_t epoch_before = (*dc)->epoch();
  ASSERT_TRUE((*dc)->Compact().ok());
  EXPECT_EQ((*dc)->epoch(), epoch_before + 1);
  EXPECT_EQ((*dc)->generation(), 2);
  EXPECT_EQ((*dc)->wal_bytes(), 0);
  VerifyMatchesRebuild(**dc, model, HardestConfig());
  if (::testing::Test::HasFatalFailure()) return;

  // Mutate past the compaction, reopen from the device, verify replay.
  ASSERT_TRUE((*dc)->Delete(model.front().first).ok());
  model.erase(model.begin());
  dc->reset();
  auto reopened = DynamicCollection::Open(&disk, "dyn");
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ((*reopened)->last_recovery().records_replayed, 1);
  VerifyMatchesRebuild(**reopened, model, HardestConfig());
}

TEST(DynamicJoinTest, MatchesRebuildAcrossConfigs) {
  const uint64_t seed = 17 + SeedOffset();
  const Script script = MakeScript(seed);
  SimulatedDisk disk(512);
  auto dc = DynamicCollection::Create(&disk, "dyn", Docs(script.initial));
  ASSERT_TRUE(dc.ok()) << dc.status();
  Model model = InitialModel(script);
  DocKey next_key = static_cast<DocKey>(script.initial.size()) + 1;
  for (const Op& op : script.ops) {
    ASSERT_TRUE(ApplyOp(dc->get(), op).ok());
    ApplyToModel(&model, op, &next_key);
    if (::testing::Test::HasFatalFailure()) return;
  }
  SimilarityConfig plain;
  SimilarityConfig cosine;
  cosine.cosine_normalize = true;
  for (const SimilarityConfig& config :
       {plain, cosine, HardestConfig()}) {
    VerifyMatchesRebuild(**dc, model, config);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(DynamicCollectionTest, CorruptWalSurfacesAsDataLoss) {
  SimulatedDisk disk(512);
  auto dc = DynamicCollection::Create(
      &disk, "dyn", Docs(MakeScript(5).initial));
  ASSERT_TRUE(dc.ok());
  ASSERT_TRUE((*dc)->Insert(Document::FromSortedCells(
                               {DCell{1, 2}, DCell{4, 1}}))
                  .ok());
  ASSERT_TRUE((*dc)->Insert(Document::FromSortedCells(
                               {DCell{2, 3}, DCell{9, 1}}))
                  .ok());
  dc->reset();

  auto wal_file = disk.FindFile("dyn.g1.wal");
  ASSERT_TRUE(wal_file.ok());
  std::vector<uint8_t> page(512);
  ASSERT_TRUE(disk.PeekPage(*wal_file, 0, page.data()).ok());
  page[2] ^= 0x10;  // inside the first record's header
  ASSERT_TRUE(disk.WritePage(*wal_file, 0, page.data(), 512).ok());

  EXPECT_EQ(DynamicCollection::Open(&disk, "dyn").status().code(),
            StatusCode::kDataLoss);
}

TEST(DynamicCollectionTest, CorruptManifestSurfacesAsDataLoss) {
  SimulatedDisk disk(512);
  auto dc = DynamicCollection::Create(
      &disk, "dyn", Docs(MakeScript(6).initial));
  ASSERT_TRUE(dc.ok());
  dc->reset();

  auto manifest = disk.FindFile("dyn.dyn.manifest");
  ASSERT_TRUE(manifest.ok());
  for (PageNumber p = 0; p < 2; ++p) {
    std::vector<uint8_t> page(512);
    ASSERT_TRUE(disk.PeekPage(*manifest, p, page.data()).ok());
    page[8] ^= 0xFF;
    ASSERT_TRUE(disk.WritePage(*manifest, p, page.data(), 512).ok());
  }
  EXPECT_EQ(DynamicCollection::Open(&disk, "dyn").status().code(),
            StatusCode::kDataLoss);
}

// Crashes injected at every write of every mutation, in both plain-fail
// and torn-write mode. After each crash the collection must reopen into
// EXACTLY the pre-write or post-write state — never a hybrid, never a
// silent loss — and every executor must match a rebuild of that state.
TEST(CrashPointTest, EveryWalAppendCrashPoint) {
  const uint64_t seed = 91 + SeedOffset();
  const Script script = MakeScript(seed);
  Rng keep_rng(seed ^ 0x9E3779B97F4A7C15ull);

  for (size_t k = 0; k < script.ops.size(); ++k) {
    for (int mode = 0; mode < 2; ++mode) {
      for (int64_t w = 0;; ++w) {
        SCOPED_TRACE("op " + std::to_string(k) + (mode == 0 ? " fail" : " torn") +
                     " write " + std::to_string(w));
        SimulatedDisk disk(512);
        auto dc =
            DynamicCollection::Create(&disk, "dyn", Docs(script.initial));
        ASSERT_TRUE(dc.ok()) << dc.status();
        Model model = InitialModel(script);
        DocKey next_key = static_cast<DocKey>(script.initial.size()) + 1;
        for (size_t i = 0; i < k; ++i) {
          ASSERT_TRUE(ApplyOp(dc->get(), script.ops[i]).ok());
          ApplyToModel(&model, script.ops[i], &next_key);
          if (::testing::Test::HasFatalFailure()) return;
        }
        const Model pre = model;
        const int64_t pre_epoch = (*dc)->epoch();
        Model post = model;
        DocKey post_next = next_key;
        ApplyToModel(&post, script.ops[k], &post_next);
        if (::testing::Test::HasFatalFailure()) return;

        if (mode == 0) {
          disk.InjectWriteFault(w);
        } else {
          disk.InjectTornWrite(
              w, static_cast<int64_t>(keep_rng.NextBounded(513)));
        }
        Status st = ApplyOp(dc->get(), script.ops[k]);
        disk.ClearWriteFault();
        if (st.ok()) break;  // w passed the op's last write: sweep done
        ASSERT_EQ(st.code(), StatusCode::kUnavailable) << st;

        // The crash: drop all in-memory state, recover from the device.
        dc->reset();
        auto reopened = DynamicCollection::Open(&disk, "dyn");
        ASSERT_TRUE(reopened.ok()) << reopened.status();
        const std::vector<DocKey> keys = (*reopened)->LiveKeys();
        if (keys == ModelKeys(post)) {
          EXPECT_EQ((*reopened)->epoch(), pre_epoch + 1);
          VerifyMatchesRebuild(**reopened, post, HardestConfig());
        } else {
          ASSERT_EQ(keys, ModelKeys(pre));
          EXPECT_EQ((*reopened)->epoch(), pre_epoch);
          VerifyMatchesRebuild(**reopened, pre, HardestConfig());
        }
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
  }
}

// Crashes injected at every write of a compaction: whatever stage dies,
// the manifest still names a complete generation, the reopened contents
// are unchanged, and a subsequent compaction succeeds (orphan files of
// the dead generation are never resolved).
TEST(CrashPointTest, EveryCompactionCrashPoint) {
  const uint64_t seed = 92 + SeedOffset();
  const Script script = MakeScript(seed);
  Rng keep_rng(seed ^ 0x6A09E667F3BCC909ull);

  for (int mode = 0; mode < 2; ++mode) {
    for (int64_t w = 0;; ++w) {
      SCOPED_TRACE(std::string(mode == 0 ? "fail" : "torn") + " write " +
                   std::to_string(w));
      SimulatedDisk disk(512);
      auto dc = DynamicCollection::Create(&disk, "dyn", Docs(script.initial));
      ASSERT_TRUE(dc.ok()) << dc.status();
      Model model = InitialModel(script);
      DocKey next_key = static_cast<DocKey>(script.initial.size()) + 1;
      for (const Op& op : script.ops) {
        ASSERT_TRUE(ApplyOp(dc->get(), op).ok());
        ApplyToModel(&model, op, &next_key);
        if (::testing::Test::HasFatalFailure()) return;
      }
      const int64_t pre_epoch = (*dc)->epoch();

      if (mode == 0) {
        disk.InjectWriteFault(w);
      } else {
        disk.InjectTornWrite(w,
                             static_cast<int64_t>(keep_rng.NextBounded(513)));
      }
      Status st = (*dc)->Compact();
      disk.ClearWriteFault();
      if (st.ok()) break;  // the sweep walked past the last write
      ASSERT_EQ(st.code(), StatusCode::kUnavailable) << st;

      dc->reset();
      auto reopened = DynamicCollection::Open(&disk, "dyn");
      ASSERT_TRUE(reopened.ok()) << reopened.status();
      // Compaction never changes logical contents; only the epoch tells
      // pre-commit from post-commit.
      ASSERT_EQ((*reopened)->LiveKeys(), ModelKeys(model));
      EXPECT_TRUE((*reopened)->epoch() == pre_epoch ||
                  (*reopened)->epoch() == pre_epoch + 1)
          << (*reopened)->epoch() << " vs " << pre_epoch;
      VerifyMatchesRebuild(**reopened, model, HardestConfig());
      if (::testing::Test::HasFatalFailure()) return;

      // Orphans of the dead generation must not poison a retry.
      ASSERT_TRUE((*reopened)->Compact().ok());
      ASSERT_EQ((*reopened)->LiveKeys(), ModelKeys(model));
      EXPECT_EQ((*reopened)->wal_bytes(), 0);
    }
  }
}

// ---------------------------------------------------------------------------
// Database integration: epochs, cache invalidation, persistence.
// ---------------------------------------------------------------------------

TEST(DatabaseDynamicTest, ResultCacheDropsWhenEitherEpochBumps) {
  Database db;
  ASSERT_TRUE(db.AddCollectionFromText(
                    "s", {"alpha beta gamma", "beta gamma delta",
                          "gamma delta epsilon"})
                  .ok());
  ASSERT_TRUE(db.BuildIndex("s").ok());
  ASSERT_TRUE(db.AddDynamicCollectionFromText(
                    "d", {"alpha beta", "delta epsilon", "beta delta"})
                  .ok());
  db.result_cache()->set_capacity(16);

  JoinSpec spec;
  spec.lambda = 2;
  auto r1 = db.Join("s", "d", spec);
  ASSERT_TRUE(r1.ok()) << r1.status();
  EXPECT_EQ(db.result_cache()->stats().hits, 0);

  // Unchanged epochs: the repeat is served from the cache.
  auto r2 = db.Join("s", "d", spec);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(db.result_cache()->stats().hits, 1);

  // Mutating the dynamic (outer) collection bumps its epoch: the cached
  // entry must be unreachable AND the fresh result must see the new doc.
  const int64_t d_epoch = db.CollectionEpoch("d");
  auto key = db.InsertDocument("d", "alpha beta gamma");
  ASSERT_TRUE(key.ok());
  EXPECT_EQ(db.CollectionEpoch("d"), d_epoch + 1);
  auto r3 = db.Join("s", "d", spec);
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(db.result_cache()->stats().hits, 1);
  EXPECT_EQ(r3->size(), r1->size() + 1);

  // Bumping the OTHER side's (static inner) epoch must also miss.
  auto r4 = db.Join("s", "d", spec);
  ASSERT_TRUE(r4.ok());
  EXPECT_EQ(db.result_cache()->stats().hits, 2);
  ASSERT_TRUE(db.BumpCollectionEpoch("s").ok());
  auto r5 = db.Join("s", "d", spec);
  ASSERT_TRUE(r5.ok());
  EXPECT_EQ(db.result_cache()->stats().hits, 2);

  // Deletes and compactions invalidate too.
  auto r6 = db.Join("s", "d", spec);
  EXPECT_EQ(db.result_cache()->stats().hits, 3);
  ASSERT_TRUE(db.DeleteDocument("d", *key).ok());
  auto r7 = db.Join("s", "d", spec);
  ASSERT_TRUE(r7.ok());
  EXPECT_EQ(db.result_cache()->stats().hits, 3);
  ASSERT_TRUE(db.CompactCollection("d").ok());
  auto r8 = db.Join("s", "d", spec);
  ASSERT_TRUE(r8.ok());
  EXPECT_EQ(db.result_cache()->stats().hits, 3);
}

TEST(DatabaseDynamicTest, DynamicJoinMatchesAcrossSaveReopen) {
  std::string path = ::testing::TempDir() + "/dynamic_roundtrip.tjsn";
  JoinSpec spec;
  spec.lambda = 3;
  spec.similarity.cosine_normalize = true;
  Result<JoinResult> before(Status::Internal("unset"));
  {
    Database db;
    ASSERT_TRUE(db.AddDynamicCollectionFromText(
                      "d", {"alpha beta gamma", "beta gamma delta",
                            "gamma delta epsilon", "delta epsilon zeta"})
                    .ok());
    ASSERT_TRUE(db.InsertDocument("d", "alpha gamma epsilon").ok());
    ASSERT_TRUE(db.DeleteDocument("d", 2).ok());
    before = db.Join("d", "d", spec);
    ASSERT_TRUE(before.ok()) << before.status();
    ASSERT_TRUE(db.Save(path).ok());
  }
  auto db2 = Database::Open(path);
  ASSERT_TRUE(db2.ok()) << db2.status();
  const DynamicCollection* dc = (*db2)->dynamic_collection("d");
  ASSERT_NE(dc, nullptr);
  EXPECT_EQ(dc->last_recovery().records_replayed, 2);
  EXPECT_EQ(dc->last_recovery().tail_bytes_discarded, 0);
  auto after = (*db2)->Join("d", "d", spec);
  ASSERT_TRUE(after.ok()) << after.status();
  ASSERT_EQ(after->size(), before->size());
  for (size_t i = 0; i < before->size(); ++i) {
    EXPECT_EQ((*after)[i].outer_doc, (*before)[i].outer_doc);
    ASSERT_EQ((*after)[i].matches.size(), (*before)[i].matches.size());
    for (size_t j = 0; j < (*before)[i].matches.size(); ++j) {
      EXPECT_EQ((*after)[i].matches[j].doc, (*before)[i].matches[j].doc);
      EXPECT_EQ((*after)[i].matches[j].score, (*before)[i].matches[j].score);
    }
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace textjoin
