#ifndef TEXTJOIN_STORAGE_CODING_H_
#define TEXTJOIN_STORAGE_CODING_H_

#include <cstdint>
#include <cstring>
#include <vector>

namespace textjoin {

// Little-endian fixed-width encodings. The paper's on-disk cells use
// 3-byte term/document numbers and 2-byte occurrence counts (a d-cell or
// i-cell is 5 bytes); the B+tree uses 9-byte leaf cells (3-byte term,
// 4-byte address, 2-byte document frequency).

inline void PutFixed16(std::vector<uint8_t>* dst, uint16_t v) {
  dst->push_back(static_cast<uint8_t>(v));
  dst->push_back(static_cast<uint8_t>(v >> 8));
}

inline void PutFixed24(std::vector<uint8_t>* dst, uint32_t v) {
  dst->push_back(static_cast<uint8_t>(v));
  dst->push_back(static_cast<uint8_t>(v >> 8));
  dst->push_back(static_cast<uint8_t>(v >> 16));
}

inline void PutFixed32(std::vector<uint8_t>* dst, uint32_t v) {
  dst->push_back(static_cast<uint8_t>(v));
  dst->push_back(static_cast<uint8_t>(v >> 8));
  dst->push_back(static_cast<uint8_t>(v >> 16));
  dst->push_back(static_cast<uint8_t>(v >> 24));
}

inline void PutFixed64(std::vector<uint8_t>* dst, uint64_t v) {
  for (int i = 0; i < 8; ++i) dst->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

inline uint16_t GetFixed16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0]) | static_cast<uint16_t>(p[1]) << 8;
}

inline uint32_t GetFixed24(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16;
}

inline uint32_t GetFixed32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;  // little-endian hosts only; asserted in coding.cc
}

inline uint64_t GetFixed64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

// Bit-exact float transport (catalog rows carry float bounds).
inline uint32_t FloatBits(float f) {
  uint32_t v;
  std::memcpy(&v, &f, 4);
  return v;
}

inline float FloatFromBits(uint32_t v) {
  float f;
  std::memcpy(&f, &v, 4);
  return f;
}

}  // namespace textjoin

#endif  // TEXTJOIN_STORAGE_CODING_H_
