#ifndef TEXTJOIN_BENCH_BENCH_UTIL_H_
#define TEXTJOIN_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

#include "cost/cost_model.h"
#include "sim/trec_profiles.h"

namespace textjoin {
namespace bench_util {

// The paper's fixed simulation parameters (Section 6): P = 4 KB pages,
// delta = 0.1, lambda = 20, base B = 10000 pages, base alpha = 5.
inline constexpr int64_t kPageSize = 4096;
inline constexpr double kDelta = 0.1;
inline constexpr int64_t kLambda = 20;
inline constexpr int64_t kBaseB = 10000;
inline constexpr double kBaseAlpha = 5.0;

// Cost inputs for a join of two TREC statistic profiles under the paper's
// parameters, with q from the paper's piecewise formula.
inline CostInputs MakeInputs(const CollectionStatistics& c1,
                             const CollectionStatistics& c2,
                             int64_t B = kBaseB, double alpha = kBaseAlpha) {
  CostInputs in;
  in.c1 = c1;
  in.c2 = c2;
  in.sys.buffer_pages = B;
  in.sys.page_size = kPageSize;
  in.sys.alpha = alpha;
  in.query.lambda = kLambda;
  in.query.delta = kDelta;
  in.q = EstimateTermOverlap(c2.num_distinct_terms, c1.num_distinct_terms);
  return in;
}

inline std::string FmtCost(const AlgorithmCost& c, bool random_model) {
  if (!c.feasible) return "inf";
  double v = random_model ? c.rand : c.seq;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0f", v);
  return buf;
}

// Prints one row of the standard six-cost table.
inline void PrintCostRow(const std::string& label, const CostComparison& c) {
  std::printf("%-14s %12s %12s %12s %12s %12s %12s   %s\n", label.c_str(),
              FmtCost(c.hhnl, false).c_str(), FmtCost(c.hhnl, true).c_str(),
              FmtCost(c.hvnl, false).c_str(), FmtCost(c.hvnl, true).c_str(),
              FmtCost(c.vvm, false).c_str(), FmtCost(c.vvm, true).c_str(),
              AlgorithmName(c.BestSequential()));
}

inline void PrintCostHeader(const char* label_name) {
  std::printf("%-14s %12s %12s %12s %12s %12s %12s   %s\n", label_name,
              "hhs", "hhr", "hvs", "hvr", "vvs", "vvr", "best(seq)");
}

inline void PrintRule() {
  std::printf(
      "---------------------------------------------------------------------"
      "---------------------------------\n");
}

}  // namespace bench_util
}  // namespace textjoin

#endif  // TEXTJOIN_BENCH_BENCH_UTIL_H_
