#ifndef TEXTJOIN_INDEX_VARINT_H_
#define TEXTJOIN_INDEX_VARINT_H_

#include <cstdint>
#include <vector>

namespace textjoin {

// LEB128 variable-length unsigned integers, used by the compressed
// inverted-entry format (delta-encoded document numbers).

inline void PutVarint(std::vector<uint8_t>* dst, uint64_t v) {
  while (v >= 0x80) {
    dst->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  dst->push_back(static_cast<uint8_t>(v));
}

// Decodes one varint starting at `p` (must have at most 10 valid bytes);
// advances *p past it. Returns the value.
inline uint64_t GetVarint(const uint8_t** p) {
  uint64_t v = 0;
  int shift = 0;
  for (;;) {
    uint8_t byte = *(*p)++;
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  return v;
}

// Encoded size of v in bytes.
inline int VarintLength(uint64_t v) {
  int n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

}  // namespace textjoin

#endif  // TEXTJOIN_INDEX_VARINT_H_
